#include "cloudprov/txn.hpp"

#include "cloudprov/serialize.hpp"
#include "util/require.hpp"
#include "util/string_utils.hpp"

namespace provcloud::cloudprov {

namespace {

// '|' inside serialized records must not collide with the chunk separator.
std::string pipe_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '|')
      out += "%7c";
    else
      out.push_back(c);
  }
  return out;
}

char kind_code(WalRecord::Kind kind) {
  switch (kind) {
    case WalRecord::Kind::kBegin: return 'B';
    case WalRecord::Kind::kData: return 'D';
    case WalRecord::Kind::kProv: return 'P';
    case WalRecord::Kind::kMd5: return 'M';
    case WalRecord::Kind::kCommit: return 'C';
  }
  return '?';
}

}  // namespace

util::Bytes encode_wal_record(const WalRecord& r) {
  using util::field_escape;
  std::string out(1, kind_code(r.kind));
  out += ';';
  out += field_escape(r.txid);
  switch (r.kind) {
    case WalRecord::Kind::kBegin:
      out += ';' + std::to_string(r.record_count);
      break;
    case WalRecord::Kind::kData:
      out += ';' + field_escape(r.temp_key) + ';' + field_escape(r.object) +
             ';' + std::to_string(r.version) + ';' + field_escape(r.nonce) +
             ';' + pass::to_string(r.pnode_kind);
      break;
    case WalRecord::Kind::kProv: {
      out += ';' + field_escape(r.object) + ';' + std::to_string(r.version) +
             ';' + std::to_string(r.chunk_index) + ';';
      std::string chunk;
      for (std::size_t i = 0; i < r.records.size(); ++i) {
        if (i > 0) chunk.push_back('|');
        chunk += pipe_escape(serialize_record(r.records[i]));
      }
      out += chunk;
      break;
    }
    case WalRecord::Kind::kMd5:
      out += ';' + field_escape(r.object) + ';' + std::to_string(r.version) +
             ';' + field_escape(r.nonce) + ';' + field_escape(r.md5);
      break;
    case WalRecord::Kind::kCommit:
      break;
  }
  return out;
}

std::optional<WalRecord> decode_wal_record(util::BytesView body) {
  using util::field_unescape;
  const std::vector<std::string> f = util::split(std::string(body), ';');
  if (f.size() < 2 || f[0].size() != 1) return std::nullopt;
  WalRecord r;
  r.txid = field_unescape(f[1]);
  try {
    switch (f[0][0]) {
      case 'B':
        if (f.size() != 3) return std::nullopt;
        r.kind = WalRecord::Kind::kBegin;
        r.record_count = static_cast<std::uint32_t>(std::stoul(f[2]));
        break;
      case 'D': {
        if (f.size() != 7) return std::nullopt;
        r.kind = WalRecord::Kind::kData;
        r.temp_key = field_unescape(f[2]);
        r.object = field_unescape(f[3]);
        r.version = static_cast<std::uint32_t>(std::stoul(f[4]));
        r.nonce = field_unescape(f[5]);
        if (f[6] == "file")
          r.pnode_kind = pass::PnodeKind::kFile;
        else if (f[6] == "process")
          r.pnode_kind = pass::PnodeKind::kProcess;
        else if (f[6] == "pipe")
          r.pnode_kind = pass::PnodeKind::kPipe;
        else
          return std::nullopt;
        break;
      }
      case 'P': {
        if (f.size() != 6) return std::nullopt;
        r.kind = WalRecord::Kind::kProv;
        r.object = field_unescape(f[2]);
        r.version = static_cast<std::uint32_t>(std::stoul(f[3]));
        r.chunk_index = static_cast<std::uint32_t>(std::stoul(f[4]));
        if (!f[5].empty()) {
          for (const std::string& piece : util::split(f[5], '|'))
            r.records.push_back(parse_record(piece));
        }
        break;
      }
      case 'M':
        if (f.size() != 6) return std::nullopt;
        r.kind = WalRecord::Kind::kMd5;
        r.object = field_unescape(f[2]);
        r.version = static_cast<std::uint32_t>(std::stoul(f[3]));
        r.nonce = field_unescape(f[4]);
        r.md5 = field_unescape(f[5]);
        break;
      case 'C':
        if (f.size() != 2) return std::nullopt;
        r.kind = WalRecord::Kind::kCommit;
        break;
      default:
        return std::nullopt;
    }
  } catch (...) {
    return std::nullopt;
  }
  return r;
}

bool WalTransaction::complete() const {
  if (!begin || !committed || !data || !md5) return false;
  const std::uint32_t have =
      1 /*data*/ + 1 /*md5*/ + static_cast<std::uint32_t>(prov_chunks.size());
  return have == begin->record_count;
}

std::vector<WalRecord> build_transaction(const std::string& txid,
                                         const pass::FlushUnit& unit,
                                         const std::string& temp_key,
                                         const std::string& nonce,
                                         const std::string& md5) {
  // Group provenance records into chunks that encode under the SQS limit.
  std::vector<WalRecord> chunks;
  WalRecord current;
  current.kind = WalRecord::Kind::kProv;
  current.txid = txid;
  current.object = unit.object;
  current.version = unit.version;
  current.chunk_index = 0;
  std::size_t current_bytes = 64 + unit.object.size();
  for (const pass::ProvenanceRecord& record : unit.records) {
    const std::size_t record_bytes = record.payload_size() + 2;
    if (!current.records.empty() &&
        current_bytes + record_bytes > kWalChunkTarget) {
      chunks.push_back(std::move(current));
      current = WalRecord{};
      current.kind = WalRecord::Kind::kProv;
      current.txid = txid;
      current.object = unit.object;
      current.version = unit.version;
      current.chunk_index = static_cast<std::uint32_t>(chunks.size());
      current_bytes = 64 + unit.object.size();
    }
    current.records.push_back(record);
    current_bytes += record_bytes;
  }
  if (!current.records.empty()) chunks.push_back(std::move(current));

  std::vector<WalRecord> out;
  WalRecord begin;
  begin.kind = WalRecord::Kind::kBegin;
  begin.txid = txid;
  begin.record_count =
      static_cast<std::uint32_t>(2 + chunks.size());  // data + chunks + md5
  out.push_back(std::move(begin));

  WalRecord data;
  data.kind = WalRecord::Kind::kData;
  data.txid = txid;
  data.temp_key = temp_key;
  data.object = unit.object;
  data.version = unit.version;
  data.nonce = nonce;
  data.pnode_kind = unit.kind;
  out.push_back(std::move(data));

  for (WalRecord& c : chunks) out.push_back(std::move(c));

  WalRecord md5rec;
  md5rec.kind = WalRecord::Kind::kMd5;
  md5rec.txid = txid;
  md5rec.object = unit.object;
  md5rec.version = unit.version;
  md5rec.nonce = nonce;
  md5rec.md5 = md5;
  out.push_back(std::move(md5rec));

  WalRecord commit;
  commit.kind = WalRecord::Kind::kCommit;
  commit.txid = txid;
  out.push_back(std::move(commit));
  return out;
}

}  // namespace provcloud::cloudprov
