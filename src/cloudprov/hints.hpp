// Provenance-driven cloud hints -- the paper's future work, implemented.
//
// Section 7: "AWS is currently agnostic of the metadata. The provenance
// stored with the data presents AWS cloud with many hints about the
// application storing the data. In the future, we plan to investigate how a
// cloud might take advantage of this provenance."
//
// This module is one such investigation: a cloud-side edge cache whose
// prefetcher mines the provenance index. When a client fetches an object,
// the cache consults SimpleDB for the object's *provenance siblings* (other
// outputs of the producing process) and *descendants* (objects derived from
// it) and warms them. Scientific access patterns are provenance-correlated
// -- a researcher who opens one blast hits file usually opens the rest of
// the run, then the summary -- so provenance is a ready-made prefetch
// oracle the storage system gets for free.
//
// bench_hints_prefetch quantifies the effect against a plain LRU cache.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"
#include "obs/metrics.hpp"

namespace provcloud::cloudprov {

namespace manifest {
class AncestorCache;
}

struct PrefetchConfig {
  /// Objects the edge cache can hold.
  std::size_t cache_capacity = 64;
  /// Use provenance hints at all (false = plain LRU for comparison).
  bool use_provenance_hints = true;
  /// Cap on sibling prefetches per miss.
  std::size_t sibling_limit = 8;
  /// Cap on descendant prefetches per miss.
  std::size_t descendant_limit = 4;
};

struct PrefetchStats {
  std::uint64_t reads = 0;
  std::uint64_t hits = 0;            // served from cache
  std::uint64_t misses = 0;          // went to S3
  std::uint64_t prefetches = 0;      // objects warmed speculatively
  std::uint64_t prefetch_hits = 0;   // hits on speculatively-warmed entries
  /// Hint-mining SimpleDB reads skipped because the shared AncestorCache
  /// already held the object's provenance fragment.
  std::uint64_t ancestor_cache_hits = 0;

  double hit_rate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(reads);
  }
  /// Fraction of prefetched objects that were subsequently used.
  double prefetch_accuracy() const {
    return prefetches == 0 ? 0.0
                           : static_cast<double>(prefetch_hits) /
                                 static_cast<double>(prefetches);
  }
};

/// A cloud-side LRU object cache with a provenance prefetcher.
class ProvenanceCache {
 public:
  /// Single-domain layout (the paper's): topology defaults to one domain.
  ProvenanceCache(CloudServices& services, PrefetchConfig config);
  /// Sharded layout: pass the storing backend's topology
  /// (SdbBackend::topology(), WalBackend::topology()) so hint queries hit
  /// the object's shard domain directly and sibling/descendant sweeps
  /// scatter across every shard instead of missing non-shard-0 objects.
  ProvenanceCache(CloudServices& services, PrefetchConfig config,
                  std::shared_ptr<const DomainTopology> topology);

  /// Client-facing read: returns the object data (null if the object does
  /// not exist). Misses fetch from S3 and, with hints enabled, trigger
  /// sibling/descendant prefetches. Internal traffic is metered under
  /// distinct op names ("GET.prefetch", "Query.prefetch") so the hint cost
  /// is separable from client traffic.
  util::SharedBytes read(const std::string& object);

  /// Share a manifest reader's AncestorCache: hint mining consults it for
  /// the object's provenance fragment before issuing the per-item SimpleDB
  /// read, so ancestors already resident from an ancestry walk stop being
  /// double-fetched. Stats count the avoided reads.
  void attach_ancestor_cache(std::shared_ptr<manifest::AncestorCache> cache) {
    ancestor_cache_ = std::move(cache);
  }

  const PrefetchStats& stats() const { return stats_; }
  std::size_t cached_objects() const { return entries_.size(); }
  bool is_cached(const std::string& object) const {
    return entries_.count(object) > 0;
  }

 private:
  struct Entry {
    util::SharedBytes data;
    std::list<std::string>::iterator lru_it;
    bool speculative = false;  // arrived via prefetch, not yet used
  };

  void touch(const std::string& object, std::map<std::string, Entry>::iterator it);
  void insert(const std::string& object, util::SharedBytes data,
              bool speculative);
  void evict_if_needed();

  /// The hint engine: provenance-related object names worth warming.
  std::vector<std::string> hint_candidates(const std::string& object);

  /// One prefetch query scattered to every shard domain (a related item can
  /// live in any shard); pages gathered in shard order, each domain's query
  /// metered as "Query.prefetch".
  std::vector<aws::SimpleDbService::ItemWithAttributes> scatter_prefetch_query(
      const std::string& expression,
      const std::vector<std::string>& attribute_filter, std::size_t limit);

  CloudServices* services_;
  PrefetchConfig config_;
  std::shared_ptr<const DomainTopology> topology_;
  std::shared_ptr<manifest::AncestorCache> ancestor_cache_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  PrefetchStats stats_;
  // Registry mirrors of stats_ (prefetch.*), resolved once in the ctor.
  obs::Counter* reads_counter_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* prefetches_counter_ = nullptr;
  obs::Counter* prefetch_hits_counter_ = nullptr;
  obs::Counter* ancestor_cache_hits_counter_ = nullptr;
};

}  // namespace provcloud::cloudprov
