// Empirical verification of the paper's Table 1.
//
// Rather than trusting each backend's claims(), the checker *measures* the
// four properties:
//
//   Atomicity       -- sweep an injected client crash through every crash
//                      point of the store protocol; after each crash, let
//                      propagation and (for Arch 3) the always-running
//                      commit daemon settle, then assert that no object has
//                      data without matching provenance and no provenance
//                      without data. (Arch 2's remedial orphan scan is NOT
//                      run here: the paper counts it as cleanup, not
//                      atomicity.)
//   Consistency     -- under aggressive staleness, hammer the read path
//                      while versions are being stored; a read that claims
//                      verified=true must return an internally matching
//                      (data, provenance) pair.
//   Causal ordering -- after every crash scenario, every cross-reference in
//                      stored provenance must name an ancestor object that
//                      is itself stored (version-granular for SimpleDB
//                      architectures, object-granular for Arch 1, which
//                      retains only the latest version's records).
//   Efficient query -- run Q.2 on a small and a double-size dataset; the
//                      property holds when query cost grows sublinearly in
//                      dataset size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloudprov/backend.hpp"

namespace provcloud::cloudprov {

struct PropertyReport {
  Architecture arch = Architecture::kS3Only;

  bool atomicity = false;
  bool consistency = false;
  bool causal_ordering = false;
  bool efficient_query = false;

  // Evidence.
  std::uint64_t crash_scenarios = 0;
  std::uint64_t atomicity_violations = 0;
  std::uint64_t causal_violations = 0;
  std::uint64_t reads_checked = 0;
  std::uint64_t consistency_violations = 0;
  /// Read-your-writes: session reads issued against still-pending submits
  /// during the crash-sweep workload, and how many failed to observe them.
  std::uint64_t ryw_checked = 0;
  std::uint64_t ryw_violations = 0;
  std::uint64_t reads_with_retries = 0;  // staleness *detected* and handled
  std::uint64_t query_ops_small = 0;
  std::uint64_t query_ops_large = 0;
  double query_growth = 0.0;  // ops_large / ops_small

  bool matches(const ProvenanceBackend::PropertyClaims& claims) const {
    return atomicity == claims.atomicity && consistency == claims.consistency &&
           causal_ordering == claims.causal_ordering &&
           efficient_query == claims.efficient_query;
  }
};

struct PropertyCheckOptions {
  std::uint64_t seed = 7;
  /// Files in the mini workload used for crash sweeps.
  std::size_t mini_files = 12;
  /// Reads issued per stored version in the consistency hammer.
  std::size_t reads_per_version = 4;
  /// Shard domains the SimpleDB architectures store across (1 = the
  /// paper's single-domain layout). The state checks sweep every shard
  /// domain, so the verdicts are layout-independent.
  std::size_t shard_count = 1;
  /// Executor parallelism of the backends under test.
  std::size_t parallelism = 1;
  /// Closes coalesced per session group commit. 1 is the paper's per-close
  /// protocol; larger groups verify the Table-1 claims still hold when the
  /// backend batches submits between durability barriers (the crash sweep
  /// then crashes *mid-group*). The consistency hammer always syncs per
  /// close -- its property is read-after-durable, independent of grouping.
  std::size_t group_size = 1;
  /// Adaptive flush deadline of the crash-sweep session (0 = flush only on
  /// group-full or sync). When set, the workload advances the clock half a
  /// deadline between closes, so injected crashes land *mid-deadline-flush*
  /// -- the daemon, not the submitter, is in commit_group when the crash
  /// fires.
  sim::SimTime flush_deadline = 0;
  /// Hostile-environment sweep (ROADMAP 5b). Extra per-request latency
  /// injected into every service (a correlated brown-out) ...
  sim::SimTime service_slowdown = 0;
  /// ... and a service-side 503 throttle storm: each request throttled
  /// with this probability and/or rate-limited to throttle_rate_per_sec
  /// admitted requests per virtual second (see aws::ThrottleConfig).
  /// Verdicts must be environment-independent: a storm may stretch elapsed
  /// time, never corrupt state or change a Table-1 answer.
  double throttle_probability = 0.0;
  std::uint64_t throttle_rate_per_sec = 0;
};

PropertyReport check_properties(Architecture arch,
                                const PropertyCheckOptions& options = {});

/// Convenience: all three rows of Table 1.
std::vector<PropertyReport> check_all_architectures(
    const PropertyCheckOptions& options = {});

/// Crash-sweep verdict for the manifest-roll protocol (the snapshot read
/// path's commit sequence: block PUTs, list PUT, history row, pointer
/// swap). Every discovered manifest.* crash point is swept; after each
/// injected crash the catalog must still bind a committed snapshot, the
/// previous snapshot must keep serving complete, correct time-travel
/// ancestry, and live manifest-path walks must stay bit-identical to the
/// pure SimpleDB scatter walk.
struct ManifestRollReport {
  Architecture arch = Architecture::kS3SimpleDb;
  std::uint64_t crash_scenarios = 0;
  std::uint64_t crashed_rolls = 0;  // scenarios where the armed crash fired
  std::uint64_t violations = 0;     // lost/duplicated/diverging provenance

  bool crash_safe() const { return crash_scenarios > 0 && violations == 0; }
};

/// Requires a SimpleDB architecture (Arch 2 or 3): rolls snapshot the
/// provenance index, which Architecture 1 does not have.
ManifestRollReport check_manifest_roll(Architecture arch,
                                       const PropertyCheckOptions& options = {});

/// Crash-sweep verdict for the Arch-4 segment log. Every discovered lsb.*
/// crash point (seal, index publication, cleaner) is swept; after each
/// injected crash a FRESH backend recovers over the same store (client
/// restart) and must: serve every committed close, expose no torn index
/// (every durable posting between the watermarks resolves to a matching
/// entry in an existing segment), and -- after a subsequent uninjected
/// cleaner pass -- answer ancestry walks bit-identically to the pre-crash
/// ground truth.
struct LsbCrashReport {
  std::uint64_t crash_scenarios = 0;
  std::uint64_t crashed_runs = 0;  // scenarios where the armed crash fired
  std::uint64_t violations = 0;

  bool crash_safe() const { return crash_scenarios > 0 && violations == 0; }
};

LsbCrashReport check_lsb_crash_sweep(const PropertyCheckOptions& options = {});

}  // namespace provcloud::cloudprov
