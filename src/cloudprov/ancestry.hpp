// Provenance-graph reconstruction.
//
// Builds a navigable ancestry graph from a backend: nodes are (object,
// version) pairs, edges are the stored cross-references (INPUT dataflow,
// PREV version chains, FORKPARENT process lineage). Supports the closure
// queries applications actually ask -- "everything this came from" and
// "everything derived from this" -- plus Graphviz export, and powers the
// provenance-challenge example.
//
// Retrieval goes through the backend's public API, so it is billed like any
// client and works identically on all three architectures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloudprov/backend.hpp"
#include "pass/record.hpp"

namespace provcloud::cloudprov {

/// One node of the reconstructed graph.
struct AncestryNode {
  pass::ObjectVersion id;
  std::string kind;  // "file" | "process" | "pipe" | "" when unknown
  std::vector<pass::ProvenanceRecord> records;
  /// Direct causal ancestors (INPUT, PREV, FORKPARENT targets).
  std::vector<pass::ObjectVersion> ancestors;
};

/// A closed subgraph of provenance.
class AncestryGraph {
 public:
  const AncestryNode* find(const pass::ObjectVersion& id) const;
  const std::map<pass::ObjectVersion, AncestryNode>& nodes() const {
    return nodes_;
  }

  /// Direct descendants of `id` within this graph (reverse edges).
  std::vector<pass::ObjectVersion> descendants_of(
      const pass::ObjectVersion& id) const;

  /// Transitive closure upward (ancestors) / downward (descendants) from a
  /// node, excluding the node itself.
  std::set<pass::ObjectVersion> ancestor_closure(
      const pass::ObjectVersion& id) const;
  std::set<pass::ObjectVersion> descendant_closure(
      const pass::ObjectVersion& id) const;

  /// Topological order, ancestors first. The PASS versioning discipline
  /// guarantees acyclicity; unexpected cycles throw LogicError.
  std::vector<pass::ObjectVersion> topological_order() const;

  /// Graphviz rendering (files as boxes, processes as ellipses, INPUT
  /// edges solid, PREV/FORKPARENT dashed).
  std::string to_dot(const std::string& graph_name = "provenance") const;

  /// Internal: used by the builder.
  void add_node(AncestryNode node);

 private:
  std::map<pass::ObjectVersion, AncestryNode> nodes_;
  std::multimap<pass::ObjectVersion, pass::ObjectVersion> reverse_;
};

/// Fetch the ancestry closure of (object, version) from a backend: the node
/// itself plus every transitive ancestor whose provenance is retrievable.
/// `max_nodes` bounds runaway walks. Unresolvable ancestors (e.g. an old
/// version on Architecture 1) are recorded in `missing`.
struct AncestryResult {
  AncestryGraph graph;
  std::vector<pass::ObjectVersion> missing;
};

AncestryResult fetch_ancestry(ProvenanceBackend& backend,
                              const std::string& object, std::uint32_t version,
                              std::size_t max_nodes = 10000);

/// Batched provenance source for walk_ancestry: given a frontier of ids,
/// return one result per id, in input order.
using ProvenanceFetcher =
    std::function<std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>>(
        const std::vector<pass::ObjectVersion>&)>;

/// The BFS underneath fetch_ancestry, generalized over the record source:
/// each round hands the whole pending frontier to `fetch` in one call, so a
/// batching source (the manifest reader) amortizes a round's lookups into a
/// few block GETs. Node-visit order, graph contents and `missing` are
/// bit-identical to the classic one-get_provenance-per-node walk for any
/// fetcher returning the same records.
AncestryResult walk_ancestry(const ProvenanceFetcher& fetch,
                             const std::string& object, std::uint32_t version,
                             std::size_t max_nodes = 10000);

}  // namespace provcloud::cloudprov
