// ShardRouter: partitions the provenance store across N SimpleDB domains.
//
// SimpleDB throttles per domain; the paper's Architectures 2 and 3 funnel
// every client through one domain, which is the first wall on the road to
// many clients. Following Brantner et al.'s partitioning advice, the router
// hashes the *object* id (not the item name) so every version of an object
// lands in the same domain, and ancestry queries can scatter/gather across
// the fixed domain list.
//
// Lookups are pure functions of (object, shard_count): no directory, no
// rebalancing state. With shard_count == 1 the single domain is the
// original "provenance" name, so existing layouts are bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace provcloud::cloudprov {

class ShardRouter {
 public:
  /// `base_domain` defaults to kProvenanceDomain (serialize.hpp); shard i of
  /// N > 1 is named "<base>-<i>", while N == 1 keeps the bare base name.
  explicit ShardRouter(std::size_t shard_count = 1,
                       std::string base_domain = std::string());

  std::size_t shard_count() const { return domains_.size(); }

  /// Every shard domain, in index order (for domain creation and
  /// scatter/gather queries).
  const std::vector<std::string>& domains() const { return domains_; }

  /// Shard index of an object id: stable_hash(object) % shard_count.
  std::size_t shard_of(std::string_view object) const;

  /// Domain holding provenance items of `object` (all its versions).
  const std::string& domain_for_object(std::string_view object) const;

  /// Domain of a provenance item "object:version" (parses the object part;
  /// hashes the whole name when it does not parse).
  const std::string& domain_for_item(const std::string& item) const;

  /// FNV-1a 64-bit. Fixed for all time: changing it would orphan every
  /// stored item, so it is pinned by tests.
  static std::uint64_t stable_hash(std::string_view s);

 private:
  std::vector<std::string> domains_;
};

}  // namespace provcloud::cloudprov
