// Architecture 3 (section 4.3): S3 + SimpleDB + SQS write-ahead logging.
//
// The client's SQS queue is a WAL (after Brantner et al.'s "Building a
// database on S3"). Close protocol (log phase):
//   1. read caches (the FlushUnit);
//   2. allocate a transaction id; enqueue a begin record with the record
//      count;
//   3. store the data under a *temporary* S3 name; enqueue a pointer record
//      tagged with the transaction id and a nonce;
//   4. enqueue the provenance in <= 8 KB chunks, plus an MD5(data || nonce)
//      record;
//   5. enqueue the commit record.
//
// The commit daemon (pump) watches ApproximateNumberOfMessages; past the
// threshold it drains the queue with repeated ReceiveMessage calls (SQS
// sampling can miss messages), assembles complete transactions, and for
// each: COPY temp -> real name stamping the nonce metadata, PutAttributes
// the provenance (<= 100 attrs per call, > 1 KB values spilled to S3),
// DeleteMessage the log records, DELETE the temp object. Every step is
// idempotent, so replay after a daemon crash is safe. Transactions without
// a commit record are ignored; SQS's 4-day retention garbage-collects their
// messages and the cleaner daemon removes their temp objects.
#pragma once

#include <map>
#include <vector>

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"
#include "cloudprov/txn.hpp"

namespace provcloud::cloudprov {

struct WalBackendConfig {
  std::string queue_name = "wal-client-0";
  /// Commit-daemon trigger: ApproximateNumberOfMessages threshold.
  std::uint64_t commit_threshold = 32;
  /// Rounds of ReceiveMessage per pump (each round fetches <= 10 messages
  /// from a shard sample).
  std::uint32_t receive_rounds = 24;
  /// Visibility timeout for WAL receives.
  sim::SimTime visibility_timeout = 60 * sim::kSecond;
  /// COPY retries against propagation races before deferring the txn.
  std::uint32_t copy_retries = 32;
  /// Cleaner: temp objects older than this are removed (the paper uses
  /// SQS's 4-day retention as the matching bound).
  sim::SimTime temp_object_ttl = 4 * sim::kDay;
  /// SimpleDB domains provenance items are hashed across. 1 keeps the
  /// original single-"provenance"-domain layout bit-identically.
  std::size_t shard_count = 1;
  /// Items per BatchPutAttributes when the commit daemon flushes a batch of
  /// transactions; 1 selects the legacy one-PutAttributes-per-chunk path.
  std::size_t batch_size = aws::kSdbMaxItemsPerBatch;
  /// Concurrent shard requests: the commit daemon flushes per-domain
  /// batches in parallel and read_many overlaps consistency rounds. 1 keeps
  /// every path sequential and deterministic.
  std::size_t parallelism = 1;
};

class WalBackend final : public ProvenanceBackend {
 public:
  WalBackend(CloudServices& services, WalBackendConfig config);

  Architecture architecture() const override {
    return Architecture::kS3SimpleDbSqs;
  }
  std::string name() const override { return "S3+SimpleDB+SQS"; }

  std::unique_ptr<Session> do_open_session(SessionConfig config) override;
  bool supports_group_commit() const override { return true; }
  /// Cross-close group commit for the log phase: the whole group's WAL
  /// records ride SendMessageBatch calls (10 messages per round trip,
  /// ordering preserved: begins, temp PUTs, middles, then the sealing
  /// commits in submit order) and the commit daemon is poked once per
  /// group instead of once per close. A single-close group takes the
  /// legacy per-message path bit-for-bit.
  void commit_group(const std::vector<TicketState*>& group,
                    sim::LatencyLedger* ledger) override;
  BackendResult<ReadResult> read(const std::string& object,
                                 std::uint32_t max_retries = 64) override;
  BackendResult<std::vector<pass::ProvenanceRecord>> get_provenance(
      const std::string& object, std::uint32_t version) override;

  /// Client restart: just run the daemons -- the WAL replays committed
  /// transactions; uncommitted ones are ignored.
  void recover() override;

  /// One commit-daemon step (threshold-gated).
  void pump() override;

  /// Drain the WAL completely: force-pump and advance past visibility
  /// timeouts until the queue is empty. Mutates the simulated clock.
  void quiesce() override;

  /// Cleaner daemon: delete temp objects of uncommitted transactions older
  /// than the TTL.
  void clean_temp_objects();

  PropertyClaims claims() const override {
    return PropertyClaims{.atomicity = true,
                          .consistency = true,
                          .causal_ordering = true,
                          .efficient_query = true};
  }

  const WalBackendConfig& config() const { return config_; }
  std::shared_ptr<const DomainTopology> topology() const override {
    return topology_;
  }
  const ShardRouter& router() const { return topology_->router(); }
  /// Transactions the commit daemon has fully processed (diagnostics).
  std::uint64_t committed_count() const { return committed_count_; }

 private:
  /// A transaction whose S3 promotion is done and whose SimpleDB writes are
  /// coalesced, waiting for the batched flush.
  struct StagedTxn {
    const WalTransaction* txn = nullptr;
    bool has_data = false;
    std::string domain;  // shard the item hashes to
    std::string item;
    std::vector<aws::SdbReplaceableAttribute> attributes;
    bool flushed = false;
  };

  /// The per-close log phase (the old store() body): begin record, temp
  /// PUT, provenance chunks, commit record, one message per send. `ticket`
  /// (nullable) is marked done once the commit record is durable; its
  /// timeline (when `ledger` is set) receives the temp PUT.
  void log_transaction(const pass::FlushUnit& unit, TicketState* ticket,
                       sim::LatencyLedger* ledger);

  void commit_phase(bool forced);
  /// Per-transaction front half: COPY/supersede handling, spill PUTs, and
  /// the attribute encoding. nullopt defers the transaction to a later pump.
  std::optional<StagedTxn> prepare_transaction(const WalTransaction& txn);
  /// Write every staged transaction's attributes: BatchPutAttributes in
  /// batch_size groups per shard domain, the domains flushed concurrently
  /// on the topology's executor (batch_size == 1: the legacy PutAttributes
  /// chunk loop). Marks `flushed` per transaction.
  void flush_staged(std::vector<StagedTxn>& staged);
  /// One domain's share of flush_staged: batch_size-sized BatchPutAttributes
  /// calls over this domain's staged transactions.
  void flush_domain_batches(const std::string& domain,
                            std::vector<StagedTxn*>& group);
  /// Per-transaction back half after a successful flush: delete the WAL
  /// messages, then the temp object.
  void finish_transaction(const StagedTxn& staged);

  CloudServices* services_;
  WalBackendConfig config_;
  std::shared_ptr<const DomainTopology> topology_;
  std::string queue_url_;
  std::uint64_t next_txid_ = 1;
  std::uint64_t committed_count_ = 0;
};

}  // namespace provcloud::cloudprov
