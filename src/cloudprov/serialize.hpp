// Wire formats: provenance records <-> S3 metadata, SimpleDB attributes,
// and the overflow-spill pointer convention.
//
// Spills: S3 metadata values and SimpleDB values are limited (2 KB total /
// 1 KB each). Following the paper, any record whose serialized payload
// exceeds the spill threshold (1 KB) is stored as its own S3 object and the
// in-place value becomes a pointer "@s3:<key>".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aws/s3/s3.hpp"
#include "aws/simpledb/types.hpp"
#include "pass/local_cache.hpp"
#include "pass/record.hpp"

namespace provcloud::cloudprov {

/// Bucket/domain layout shared by the three architectures.
inline constexpr const char* kDataBucket = "pass-data";
inline constexpr const char* kProvenanceDomain = "provenance";
inline constexpr const char* kOverflowPrefix = ".prov-overflow/";
inline constexpr const char* kTempPrefix = ".tmp/";
/// Records above this serialized size are spilled to their own S3 object.
inline constexpr std::size_t kSpillThreshold = util::kKiB;
/// Marker prefix identifying a spilled value.
inline constexpr const char* kSpillMarker = "@s3:";

/// Item name of (object, version) in the provenance domain: "object:version"
/// -- the paper's "concatenation of the object name and the version".
std::string item_name(const std::string& object, std::uint32_t version);

/// Inverse of item_name; returns false on malformed input.
bool parse_item_name(const std::string& item, std::string& object,
                     std::uint32_t& version);

/// Overflow object key for record #index of (object, version).
std::string overflow_key(const std::string& object, std::uint32_t version,
                         std::size_t index);

/// One serialized record: attribute plus value rendered as a string (xrefs
/// as "object:version"), fields escaped.
std::string serialize_record(const pass::ProvenanceRecord& record);

/// Parse "attribute=value" back into a record. Values that look like
/// cross-references ("name:digits" with a known xref attribute) are decoded
/// as xrefs.
pass::ProvenanceRecord parse_record(const std::string& serialized);

/// True when `attribute` carries cross-references (INPUT, PREV, FORKPARENT).
bool is_xref_attribute(const std::string& attribute);

// --- Architecture 1: records as S3 metadata -------------------------------

/// Metadata rendering of a flush unit. Record i becomes key "p<i>" holding
/// "attribute=value"; bookkeeping keys "x-object", "x-version" and "x-kind"
/// identify the unit. `spills[i]` (parallel to records) is set when record i
/// must go to its own S3 object, in which case the metadata value is the
/// spill pointer.
struct S3MetadataEncoding {
  aws::S3Metadata metadata;
  std::vector<std::size_t> spilled_indexes;  // records needing overflow PUTs
};

S3MetadataEncoding encode_unit_as_metadata(const pass::FlushUnit& unit);

/// Decode metadata back into records; spill pointers are returned verbatim
/// (value "@s3:<key>") for the caller to resolve.
struct DecodedMetadata {
  std::string object;
  std::uint32_t version = 0;
  std::string kind;
  std::vector<pass::ProvenanceRecord> records;
  std::vector<std::string> spill_keys;  // unresolved overflow pointers
};

DecodedMetadata decode_metadata(const aws::S3Metadata& metadata);

// --- Architectures 2 & 3: records as SimpleDB attributes ------------------

/// SimpleDB rendering: each record becomes an attribute (name = record
/// attribute, value = serialized value); values above the threshold are
/// replaced by spill pointers. Multi-valued attributes (several INPUTs) are
/// naturally supported by the SimpleDB data model.
struct SdbEncoding {
  std::vector<aws::SdbReplaceableAttribute> attributes;
  std::vector<std::size_t> spilled_indexes;  // indexes into unit.records
};

SdbEncoding encode_unit_as_attributes(const pass::FlushUnit& unit);

/// Decode a SimpleDB item back into records. Spill pointers come back as
/// text records with the "@s3:" value for the caller to resolve.
std::vector<pass::ProvenanceRecord> decode_attributes(const aws::SdbItem& item);

}  // namespace provcloud::cloudprov
