#include "cloudprov/shard_router.hpp"

#include "cloudprov/serialize.hpp"

namespace provcloud::cloudprov {

ShardRouter::ShardRouter(std::size_t shard_count, std::string base_domain) {
  if (base_domain.empty()) base_domain = kProvenanceDomain;
  if (shard_count <= 1) {
    domains_.push_back(std::move(base_domain));
    return;
  }
  domains_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    domains_.push_back(base_domain + "-" + std::to_string(i));
}

std::uint64_t ShardRouter::stable_hash(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::size_t ShardRouter::shard_of(std::string_view object) const {
  if (domains_.size() == 1) return 0;
  return static_cast<std::size_t>(stable_hash(object) % domains_.size());
}

const std::string& ShardRouter::domain_for_object(
    std::string_view object) const {
  return domains_[shard_of(object)];
}

const std::string& ShardRouter::domain_for_item(const std::string& item) const {
  std::string object;
  std::uint32_t version = 0;
  if (parse_item_name(item, object, version)) return domain_for_object(object);
  return domain_for_object(item);
}

}  // namespace provcloud::cloudprov
