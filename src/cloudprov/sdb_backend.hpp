// Architecture 2 (section 4.2): data in S3, provenance in SimpleDB.
//
// On close:
//   1. read caches (arrives as the FlushUnit);
//   2. build one big provenance record for the version: each PASS record
//      becomes an attribute-value pair of the SimpleDB item named
//      "<object>:<version>"; values over 1 KB are stored as separate S3
//      objects and replaced by pointers; an extra MD5 attribute holds
//      MD5(data || nonce);
//   3. PutAttributes -- possibly several calls (100-attribute limit);
//   4. PUT the data to S3 with the nonce as metadata.
//
// Efficient query (SimpleDB indexes everything) and consistency (MD5+nonce
// detection) hold; *atomicity does not*: a crash between steps 3 and 4
// leaves orphan provenance. recover() implements the paper's inelegant fix:
// a full scan of the domain deleting provenance of objects that never
// arrived.
#pragma once

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"

namespace provcloud::cloudprov {

/// Storage-path knobs. The defaults enable the batched write path (fewer
/// SimpleDB round trips per close); batch_size = 1 with shard_count = 1
/// restores the paper's exact PutAttributes-chunked protocol.
struct SdbBackendConfig {
  /// SimpleDB domains provenance items are hashed across. 1 keeps the
  /// original single-"provenance"-domain layout bit-identically.
  std::size_t shard_count = 1;
  /// Items per BatchPutAttributes write call; 1 selects the legacy
  /// one-PutAttributes-per-100-attribute-chunk path.
  std::size_t batch_size = aws::kSdbMaxItemsPerBatch;
  /// Concurrent shard requests (read_many fan-out). 1 keeps every path
  /// sequential and deterministic.
  std::size_t parallelism = 1;
};

class SdbBackend final : public ProvenanceBackend {
 public:
  explicit SdbBackend(CloudServices& services, SdbBackendConfig config = {});

  Architecture architecture() const override {
    return Architecture::kS3SimpleDb;
  }
  std::string name() const override { return "S3+SimpleDB"; }

  std::unique_ptr<Session> do_open_session(SessionConfig config) override;
  bool supports_group_commit() const override { return true; }
  /// Cross-close group commit: one BatchPutAttributes chain per group of
  /// closes (per shard domain, in causal waves) instead of one per close,
  /// then the data PUTs in submit order. With a single-close group this is
  /// bit-for-bit the per-close store() protocol. A session batch_size
  /// override rides the tickets; the smallest nonzero one wins for the
  /// whole group (1 forces the legacy PutAttributes-chunk path).
  void commit_group(const std::vector<TicketState*>& group,
                    sim::LatencyLedger* ledger) override;
  BackendResult<ReadResult> read(const std::string& object,
                                 std::uint32_t max_retries = 64) override;
  BackendResult<std::vector<pass::ProvenanceRecord>> get_provenance(
      const std::string& object, std::uint32_t version) override;

  /// Orphan-provenance scan: delete items whose data never made it to S3.
  void recover() override;

  PropertyClaims claims() const override {
    return PropertyClaims{.atomicity = false,
                          .consistency = true,
                          .causal_ordering = true,
                          .efficient_query = true};
  }

  /// Number of orphan items the last recover() removed (diagnostics).
  std::uint64_t last_recovery_orphans() const { return last_orphans_; }

  const SdbBackendConfig& config() const { return config_; }
  std::shared_ptr<const DomainTopology> topology() const override {
    return topology_;
  }
  const ShardRouter& router() const { return topology_->router(); }

 private:
  CloudServices* services_;
  SdbBackendConfig config_;
  std::shared_ptr<const DomainTopology> topology_;
  std::uint64_t last_orphans_ = 0;
};

}  // namespace provcloud::cloudprov
