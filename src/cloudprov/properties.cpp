#include "cloudprov/properties.hpp"

#include <cstring>
#include <set>
#include <memory>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/lsb/format.hpp"
#include "cloudprov/lsb/lsb_backend.hpp"
#include "cloudprov/manifest/reader.hpp"
#include "cloudprov/manifest/writer.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/session.hpp"
#include "cloudprov/wal_backend.hpp"
#include "pass/observer.hpp"
#include "util/md5.hpp"
#include "util/require.hpp"
#include "util/string_utils.hpp"
#include "workloads/compile.hpp"

namespace provcloud::cloudprov {

namespace {

/// One disposable world: env + services + backend, laid out and
/// parallelized per the checker options.
struct Fixture {
  explicit Fixture(Architecture arch, std::uint64_t seed,
                   aws::ConsistencyConfig consistency,
                   const PropertyCheckOptions& options)
      : env(seed, consistency), services(env) {
    switch (arch) {
      case Architecture::kS3Only:
        backend = make_backend(arch, services);
        break;
      case Architecture::kS3SimpleDb: {
        auto sdb = std::make_unique<SdbBackend>(
            services, SdbBackendConfig{.shard_count = options.shard_count,
                                       .parallelism = options.parallelism});
        topology = sdb->topology();
        backend = std::move(sdb);
        break;
      }
      case Architecture::kS3SimpleDbSqs: {
        WalBackendConfig cfg;
        cfg.shard_count = options.shard_count;
        cfg.parallelism = options.parallelism;
        auto wal = std::make_unique<WalBackend>(services, cfg);
        topology = wal->topology();
        backend = std::move(wal);
        break;
      }
      case Architecture::kS3SegmentLog: {
        LsbBackendConfig cfg;
        cfg.shard_count = options.shard_count;
        cfg.parallelism = options.parallelism;
        // Small publish threshold: index publications (and their crash
        // points) fire inside the workload, not only at quiesce.
        cfg.index_publish_entries = 8;
        auto lsb = std::make_unique<LsbBackend>(services, cfg);
        topology = lsb->topology();
        backend = std::move(lsb);
        break;
      }
    }
    // Arch 1 has no SimpleDB layout; check_state's S3 branch ignores the
    // topology, but keep a valid single-domain one for uniformity.
    if (topology == nullptr)
      topology = DomainTopology::make(
          TopologyConfig{.ledger = &env.latency_ledger()});
    group_size = options.group_size;
    flush_deadline = options.flush_deadline;
    // Hostile environment: correlated brown-outs and 503 throttle storms
    // across every service the architectures touch. The checks below must
    // reach the same verdicts -- slower, never corrupted.
    for (const char* service : {"s3", "sdb", "sqs", "ebs"}) {
      if (options.service_slowdown > 0)
        env.set_service_slowdown(service, options.service_slowdown);
      if (options.throttle_probability > 0.0 ||
          options.throttle_rate_per_sec > 0) {
        aws::ThrottleConfig throttle;
        throttle.probability = options.throttle_probability;
        throttle.rate_per_sec = options.throttle_rate_per_sec;
        env.set_service_throttle(service, throttle);
      }
    }
  }

  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
  std::shared_ptr<const DomainTopology> topology;
  std::size_t group_size = 1;
  sim::SimTime flush_deadline = 0;
  // Read-your-writes evidence gathered while driving workloads.
  std::uint64_t ryw_checked = 0;
  std::uint64_t ryw_violations = 0;
};

aws::ConsistencyConfig aggressive_staleness() {
  aws::ConsistencyConfig c;
  c.replicas = 3;
  c.propagation_min = 500 * sim::kMillisecond;
  c.propagation_max = 5 * sim::kSecond;
  c.sqs_sample_fraction = 0.5;
  return c;
}

/// The small hand-built trace the crash sweep runs. Contains: multi-KB env
/// records (spill path), a three-deep derivation chain (causal ordering),
/// and a version bump (write after flush).
pass::SyscallTrace mini_trace(std::uint64_t seed, std::size_t files) {
  util::Rng rng(seed);
  pass::SyscallTrace t;
  const pass::Pid ingest = 11, transform = 12, aggregate = 13, editor = 14;

  t.push_back(pass::ev_exec(ingest, "/bin/ingest", {"ingest", "--all"},
                            workloads::synth_environment(rng, 1600)));
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < files; ++i) {
    const std::string path = "data/f" + std::to_string(i);
    inputs.push_back(path);
    t.push_back(pass::ev_write(ingest, path,
                               util::Bytes(64 + 32 * (i % 7), 'a' + (i % 23))));
    t.push_back(pass::ev_close(ingest, path));
  }
  t.push_back(pass::ev_exit(ingest));

  t.push_back(pass::ev_exec(transform, "/usr/bin/transform", {"transform"},
                            workloads::synth_environment(rng, 1400)));
  for (std::size_t i = 0; i < std::min<std::size_t>(3, inputs.size()); ++i)
    t.push_back(pass::ev_read(transform, inputs[i]));
  t.push_back(pass::ev_write(transform, "data/derived0", util::Bytes(256, 'd')));
  t.push_back(pass::ev_close(transform, "data/derived0"));
  t.push_back(pass::ev_exit(transform));

  t.push_back(pass::ev_exec(aggregate, "/usr/bin/aggregate", {"aggregate"},
                            workloads::synth_environment(rng, 1200)));
  t.push_back(pass::ev_read(aggregate, "data/derived0"));
  t.push_back(pass::ev_write(aggregate, "data/derived1", util::Bytes(128, 'e')));
  t.push_back(pass::ev_close(aggregate, "data/derived1"));
  t.push_back(pass::ev_exit(aggregate));

  // Version bump: rewrite an already-flushed input.
  t.push_back(pass::ev_exec(editor, "/usr/bin/editor", {"editor"},
                            workloads::synth_environment(rng, 900)));
  if (!inputs.empty()) {
    t.push_back(pass::ev_write(editor, inputs[0], util::Bytes(96, 'z')));
    t.push_back(pass::ev_close(editor, inputs[0]));
  }
  t.push_back(pass::ev_exit(editor));
  return t;
}

/// Run a trace through PASS into the backend via a client session at the
/// checker's group size. Returns false if an injected crash killed the
/// client partway -- with group_size > 1 that crash lands mid-group-commit,
/// which is exactly the scenario the batched-submit sweep must score. With a
/// flush deadline set, the clock advances half a deadline between closes, so
/// crashes also land inside deadline-expiry flushes (the commit daemon, not
/// the submitter, holds the group). Every still-pending close is immediately
/// read back through the session: read-your-writes says the pending submit
/// must be observed without waiting for durability.
bool drive(Fixture& fx, const pass::SyscallTrace& trace,
           pass::PassObserver* observer_out = nullptr) {
  auto session = fx.backend->open_session(
      SessionConfig{.client_id = "client-0",
                    .max_group = fx.group_size,
                    .flush_deadline = fx.flush_deadline});
  pass::PassObserver observer([&fx, &session](const pass::FlushUnit& unit) {
    const Ticket ticket = session->submit(unit);
    if (!ticket.done()) {
      ++fx.ryw_checked;
      const auto got = session->read(unit.object);
      const bool observed =
          got.has_value() && got->version == unit.version &&
          (unit.data == nullptr ||
           (got->data != nullptr && *got->data == *unit.data));
      if (!observed) ++fx.ryw_violations;
    }
    if (fx.flush_deadline > 0)
      fx.env.clock().advance_by(fx.flush_deadline / 2);
  });
  try {
    observer.apply_trace(trace);
    observer.finish();
    const auto synced = session->sync();
    PROVCLOUD_REQUIRE_MSG(synced.has_value(),
                          "session sync failed: " + synced.error().message);
  } catch (const sim::CrashError&) {
    if (observer_out != nullptr) *observer_out = std::move(observer);
    return false;
  }
  if (observer_out != nullptr) *observer_out = std::move(observer);
  return true;
}

/// Let the world settle: all propagation delivered; Arch-3 daemons pumped.
/// An armed crash may fire inside quiesce (Arch 4 publishes its index
/// checkpoint there): the client dies mid-publication, which is exactly a
/// scenario the sweep must score, so swallow it and finish draining.
void settle(Fixture& fx) {
  fx.env.clock().drain();
  try {
    fx.backend->quiesce();
  } catch (const sim::CrashError&) {
  }
  fx.env.clock().drain();
}

std::uint32_t meta_version(const aws::S3Metadata& meta, const char* key) {
  auto it = meta.find(key);
  if (it == meta.end()) return 0;
  try {
    return static_cast<std::uint32_t>(std::stoul(it->second));
  } catch (...) {
    return 0;
  }
}

struct StateViolations {
  std::uint64_t atomicity = 0;
  std::uint64_t causal = 0;
};

/// Invariant check over the settled cloud state (coordinator views; not
/// billed). Sweeps every shard domain of the topology: under sharding an
/// item lives in its object's hash domain, and peeking only the base
/// domain would misreport stored provenance as atomicity/orphan
/// violations.
StateViolations check_state(Architecture arch, CloudServices& services,
                            const DomainTopology& topology) {
  StateViolations v;
  std::vector<std::string> data_keys;
  for (const std::string& key : services.s3.peek_keys(kDataBucket)) {
    if (util::starts_with(key, kOverflowPrefix) ||
        util::starts_with(key, kTempPrefix))
      continue;
    data_keys.push_back(key);
  }
  const std::set<std::string> data_set(data_keys.begin(), data_keys.end());

  if (arch == Architecture::kS3Only) {
    for (const std::string& key : data_keys) {
      auto obj = services.s3.peek(kDataBucket, key);
      PROVCLOUD_REQUIRE(obj.has_value());
      DecodedMetadata decoded = decode_metadata(obj->metadata);
      if (decoded.records.empty()) {
        ++v.atomicity;  // data without provenance
        continue;
      }
      for (const std::string& spill : decoded.spill_keys)
        if (!services.s3.peek(kDataBucket, spill)) ++v.atomicity;
      for (const pass::ProvenanceRecord& r : decoded.records)
        if (r.is_xref() && data_set.count(r.xref().object) == 0) ++v.causal;
    }
    return v;
  }

  if (arch == Architecture::kS3SegmentLog) {
    // The log is the ground truth and data + provenance travel inside one
    // entry, so atomicity can only tear two ways: an undecodable segment
    // object, or a durable index posting that resolves to nothing. Orphan
    // segments above indexed-to are fine (recover() replays them); chunk
    // items outside [delete-to, indexed-to] are in-flight or dead debris
    // the protocol already discounts.
    std::map<std::uint64_t, util::SharedBytes> blobs;
    std::set<pass::ObjectVersion> in_log;
    for (const std::string& key : services.s3.peek_keys(lsb::kSegmentBucket)) {
      std::uint64_t id = 0;
      if (!lsb::parse_segment_key(key, id)) continue;
      auto obj = services.s3.peek(lsb::kSegmentBucket, key);
      PROVCLOUD_REQUIRE(obj.has_value());
      auto seg = lsb::decode_segment(*obj->data);
      if (!seg || seg->id != id) {
        ++v.atomicity;  // torn segment object
        continue;
      }
      for (const lsb::PlacedEntry& placed : seg->entries)
        in_log.insert(placed.entry.id);
      blobs[id] = obj->data;
    }
    // Causal ordering, version-granular: every xref in every entry names
    // an (object, version) present somewhere in the log. Checked against
    // the full set (compaction may rewrite an ancestor into a younger
    // segment than its descendant's).
    for (const auto& [id, blob] : blobs) {
      auto seg = lsb::decode_segment(*blob);
      for (const lsb::PlacedEntry& placed : seg->entries)
        for (const pass::ProvenanceRecord& r : placed.entry.records)
          if (r.is_xref() && in_log.count(r.xref()) == 0) ++v.causal;
    }

    std::uint64_t delete_to = 1;
    std::uint64_t indexed_to = 0;
    if (auto meta = services.sdb.peek_item(topology.domains().front(),
                                           lsb::kMetaItem)) {
      const auto parse = [&meta](const char* attr, std::uint64_t fallback) {
        auto it = meta->find(attr);
        if (it == meta->end() || it->second.empty()) return fallback;
        try {
          return static_cast<std::uint64_t>(
              std::stoull(*it->second.begin()));
        } catch (...) {
          return fallback;
        }
      };
      delete_to = parse(lsb::kDeleteToAttr, 1);
      indexed_to = parse(lsb::kIndexedToAttr, 0);
    }
    for (const std::string& domain : topology.domains()) {
      for (const std::string& item : services.sdb.peek_item_names(domain)) {
        std::uint64_t seg = 0;
        std::uint64_t chunk = 0;
        if (!lsb::parse_index_item_name(item, seg, chunk)) continue;
        if (seg < delete_to || seg > indexed_to) continue;
        auto attrs = services.sdb.peek_item(domain, item);
        PROVCLOUD_REQUIRE(attrs.has_value());
        for (const auto& [name, values] : *attrs) {
          for (const std::string& value : values) {
            std::vector<lsb::Posting> postings;
            if (!lsb::unpack_postings(value, seg, postings)) {
              ++v.atomicity;  // unparseable posting value
              continue;
            }
            for (const auto& [ov, loc] : postings) {
              auto bit = blobs.find(loc.segment);
              if (bit == blobs.end() ||
                  loc.offset + loc.length > bit->second->size()) {
                ++v.atomicity;  // posting into a missing/short segment
                continue;
              }
              auto entry = lsb::decode_entry(
                  bit->second->substr(loc.offset, loc.length));
              if (!entry || !(entry->id == ov)) ++v.atomicity;
            }
          }
        }
      }
    }
    return v;
  }

  // SimpleDB architectures: version-granular checks over every shard
  // domain's coordinator view.
  std::vector<std::pair<std::string, std::string>> domain_items;
  std::set<std::string> item_set;
  for (const std::string& domain : topology.domains()) {
    for (std::string& item : services.sdb.peek_item_names(domain)) {
      item_set.insert(item);
      domain_items.emplace_back(domain, std::move(item));
    }
  }

  // (a) provenance without data (orphans). Transient pnodes carry no data
  // object by design, so only file items can be orphaned.
  for (const auto& [domain, item] : domain_items) {
    std::string object;
    std::uint32_t version = 0;
    if (!parse_item_name(item, object, version)) continue;
    auto attrs = services.sdb.peek_item(domain, item);
    PROVCLOUD_REQUIRE(attrs.has_value());
    auto kind_it = attrs->find("x-kind");
    const bool is_file = kind_it == attrs->end() || kind_it->second.empty() ||
                         *kind_it->second.begin() == "file";
    if (is_file) {
      auto obj = services.s3.peek(kDataBucket, object);
      if (!obj || meta_version(obj->metadata, kVersionMetaKey) < version) {
        ++v.atomicity;
        continue;
      }
    }
    // (c) causal ordering: every xref's (object, version) item must exist.
    for (const auto& [name, values] : *attrs) {
      if (!is_xref_attribute(name)) continue;
      for (const std::string& value : values) {
        if (value.rfind(kSpillMarker, 0) == 0) continue;
        if (item_set.count(value) == 0) ++v.causal;
      }
    }
  }

  // (b) data without matching provenance.
  for (const std::string& key : data_keys) {
    auto obj = services.s3.peek(kDataBucket, key);
    PROVCLOUD_REQUIRE(obj.has_value());
    const std::uint32_t version = meta_version(obj->metadata, kVersionMetaKey);
    auto nonce_it = obj->metadata.find(kNonceMetaKey);
    const std::string nonce = nonce_it == obj->metadata.end()
                                  ? nonce_for_version(version)
                                  : nonce_it->second;
    auto item = services.sdb.peek_item(topology.domain_for_object(key),
                                       item_name(key, version));
    if (!item) {
      ++v.atomicity;
      continue;
    }
    auto md5_it = item->find(kMd5Attribute);
    if (md5_it == item->end() || md5_it->second.empty() ||
        *md5_it->second.begin() != util::md5_with_nonce(*obj->data, nonce))
      ++v.atomicity;
  }
  return v;
}

/// The late derivation stored *after* the first snapshot rolls: the mutable
/// tail the manifest read path must fall back to SimpleDB for.
pass::SyscallTrace tail_trace(std::uint64_t seed) {
  util::Rng rng(seed);
  pass::SyscallTrace t;
  const pass::Pid late = 15;
  t.push_back(pass::ev_exec(late, "/usr/bin/late", {"late"},
                            workloads::synth_environment(rng, 800)));
  t.push_back(pass::ev_read(late, "data/derived1"));
  t.push_back(pass::ev_write(late, "data/late0", util::Bytes(96, 'l')));
  t.push_back(pass::ev_close(late, "data/late0"));
  t.push_back(pass::ev_exit(late));
  return t;
}

/// Full structural equality of two ancestry answers: same nodes (kind,
/// records, ancestor edges) and the same missing list.
bool ancestry_equal(const AncestryResult& a, const AncestryResult& b) {
  if (a.missing != b.missing) return false;
  const auto& an = a.graph.nodes();
  const auto& bn = b.graph.nodes();
  if (an.size() != bn.size()) return false;
  for (const auto& [id, node] : an) {
    const AncestryNode* other = b.graph.find(id);
    if (other == nullptr || node.kind != other->kind ||
        node.records != other->records || node.ancestors != other->ancestors)
      return false;
  }
  return true;
}

/// All crash points the architecture's protocol passes through, discovered
/// from an uninjected run.
std::vector<std::string> discover_crash_points(
    Architecture arch, const PropertyCheckOptions& options) {
  Fixture fx(arch, options.seed, aggressive_staleness(), options);
  drive(fx, mini_trace(options.seed, options.mini_files));
  settle(fx);
  return fx.env.failures().observed_points();
}

}  // namespace

PropertyReport check_properties(Architecture arch,
                                const PropertyCheckOptions& options) {
  PropertyReport report;
  report.arch = arch;

  // ------------------------------------------------------ crash sweep ----
  const std::vector<std::string> points = discover_crash_points(arch, options);
  std::uint64_t atomicity_violations = 0;
  std::uint64_t causal_violations = 0;
  for (const std::string& point : points) {
    for (std::uint64_t occurrence : {std::uint64_t{1}, std::uint64_t{7}}) {
      Fixture fx(arch, options.seed + occurrence, aggressive_staleness(),
                 options);
      fx.env.failures().arm_crash(point, occurrence);
      const bool completed = drive(fx, mini_trace(options.seed, options.mini_files));
      settle(fx);
      // The client is gone, but daemons (Arch 3's commit daemon) are part of
      // the system and keep running -- settle() pumped them. Remedial
      // recovery (Arch 2's orphan scan) is deliberately NOT run: Table 1
      // scores the protocol, not the cleanup.
      const StateViolations v = check_state(arch, fx.services, *fx.topology);
      atomicity_violations += v.atomicity;
      causal_violations += v.causal;
      report.ryw_checked += fx.ryw_checked;
      report.ryw_violations += fx.ryw_violations;
      ++report.crash_scenarios;
      (void)completed;
    }
  }
  report.atomicity_violations = atomicity_violations;
  report.causal_violations = causal_violations;
  report.atomicity = atomicity_violations == 0;
  report.causal_ordering = causal_violations == 0;

  // ------------------------------------------------ consistency hammer ----
  {
    Fixture fx(arch, options.seed ^ 0xc0ffee, aggressive_staleness(), options);
    // The hammer reads right after each close: sync() per close is the
    // durability barrier a reader-visible close implies, so the property
    // stays read-after-durable at every group size.
    auto session = fx.backend->open_session(SessionConfig{
        .client_id = "client-0", .max_group = options.group_size});
    pass::PassObserver observer([&session](const pass::FlushUnit& unit) {
      session->submit(unit);
      const auto synced = session->sync();
      PROVCLOUD_REQUIRE_MSG(synced.has_value(),
                            "hammer sync failed: " + synced.error().message);
    });
    const pass::Pid writer = 21;
    util::Rng rng(options.seed);
    observer.apply(pass::ev_exec(writer, "/bin/writer", {"writer"},
                                 workloads::synth_environment(rng, 1000)));
    for (int version = 0; version < 6; ++version) {
      observer.apply(pass::ev_write(writer, "data/hot",
                                    util::Bytes(512 + 64 * version, 'h')));
      observer.apply(pass::ev_close(writer, "data/hot"));
      // The commit daemon runs between client operations (Arch 3); without
      // it nothing would reach S3/SimpleDB before the reads below.
      fx.backend->recover();
      // Reads race propagation: no draining here.
      for (std::size_t r = 0; r < options.reads_per_version; ++r) {
        fx.env.clock().advance_by(200 * sim::kMillisecond);
        auto result = fx.backend->read("data/hot");
        if (!result) continue;
        ++report.reads_checked;
        if (result->retries > 0) ++report.reads_with_retries;
        if (!result->verified) continue;  // refused to vouch: not a violation
        const auto& truth = observer.ground_truth();
        auto it = truth.find({"data/hot", result->version});
        if (it == truth.end() || *it->second.data != *result->data)
          ++report.consistency_violations;
      }
    }
    report.consistency =
        report.reads_checked > 0 && report.consistency_violations == 0;
  }

  // ------------------------------------------------ query-cost scaling ----
  {
    const auto measure = [&](double scale) -> std::uint64_t {
      Fixture fx(arch, options.seed ^ 0xdead, aws::ConsistencyConfig::strong(),
                 options);
      workloads::WorkloadOptions wo;
      wo.seed = options.seed;
      wo.count_scale = scale;
      wo.size_scale = 0.02;  // tiny payloads; query cost is what matters
      const workloads::CompileWorkload compile;
      drive(fx, compile.generate(wo));
      settle(fx);
      auto engine =
          arch == Architecture::kS3Only ? make_s3_query_engine(fx.services)
          : arch == Architecture::kS3SegmentLog
              ? make_lsb_query_engine(fx.services)
              : make_sdb_query_engine(
                    fx.services,
                    SdbQueryConfig{.shard_count = options.shard_count,
                                   .parallelism = options.parallelism});
      const sim::MeterSnapshot before = fx.env.meter().snapshot();
      engine->q2_outputs_of("/usr/bin/gcc");
      const sim::MeterSnapshot diff =
          fx.env.meter().snapshot().diff(before);
      return diff.calls("s3") + diff.calls("sdb");
    };
    report.query_ops_small = measure(0.08);
    report.query_ops_large = measure(0.16);
    report.query_growth =
        report.query_ops_small == 0
            ? 0.0
            : static_cast<double>(report.query_ops_large) /
                  static_cast<double>(report.query_ops_small);
    report.efficient_query = report.query_growth < 1.5;
  }

  return report;
}

std::vector<PropertyReport> check_all_architectures(
    const PropertyCheckOptions& options) {
  return {check_properties(Architecture::kS3Only, options),
          check_properties(Architecture::kS3SimpleDb, options),
          check_properties(Architecture::kS3SimpleDbSqs, options),
          check_properties(Architecture::kS3SegmentLog, options)};
}

ManifestRollReport check_manifest_roll(Architecture arch,
                                       const PropertyCheckOptions& options) {
  PROVCLOUD_REQUIRE_MSG(arch != Architecture::kS3Only,
                        "manifest rolls need a SimpleDB layout");
  ManifestRollReport report;
  report.arch = arch;
  // Small blocks so multi-block rolls exist and after_block_put fires more
  // than once -- the sweep then lands crashes both early and mid-sequence.
  const manifest::ManifestWriterConfig roll_cfg{.block_entries = 4};

  // Discover the roll protocol's crash surface from an uninjected run.
  std::vector<std::string> points;
  {
    Fixture fx(arch, options.seed, aggressive_staleness(), options);
    drive(fx, mini_trace(options.seed, options.mini_files));
    settle(fx);
    manifest::ManifestWriter writer(fx.services, fx.topology, roll_cfg);
    const auto rolled = writer.roll();
    PROVCLOUD_REQUIRE_MSG(rolled.has_value(), "uninjected roll failed");
    for (const std::string& p : fx.env.failures().observed_points())
      if (util::starts_with(p, "manifest.")) points.push_back(p);
  }

  for (const std::string& point : points) {
    for (std::uint64_t occurrence : {std::uint64_t{1}, std::uint64_t{2}}) {
      Fixture fx(arch, options.seed + occurrence, aggressive_staleness(),
                 options);
      drive(fx, mini_trace(options.seed, options.mini_files));
      settle(fx);
      manifest::ManifestWriter writer(fx.services, fx.topology, roll_cfg);
      const auto first = writer.roll();
      PROVCLOUD_REQUIRE_MSG(first.has_value(), "first roll failed");
      const std::uint64_t first_id = first->snapshot_id;

      // The mutable tail lands after snapshot 1.
      drive(fx, tail_trace(options.seed));
      settle(fx);

      // Ground truth from the pure per-shard SimpleDB scatter walk, taken
      // before any crash: the live manifest walk must match it afterwards.
      auto scatter = make_sdb_query_engine(fx.services, fx.topology);
      const AncestryResult want_tail = scatter->ancestry("data/late0", 1);
      const AncestryResult want_frozen = scatter->ancestry("data/derived1", 1);

      fx.env.failures().arm_crash(point, occurrence);
      bool crashed = false;
      try {
        writer.roll();
      } catch (const sim::CrashError&) {
        crashed = true;
      }
      fx.env.failures().disarm(point);
      settle(fx);
      ++report.crash_scenarios;
      if (crashed) ++report.crashed_rolls;

      // The catalog must bind *some* committed snapshot -- never an
      // uncommitted torso, never nothing.
      manifest::ManifestReader reader(fx.services, fx.topology);
      if (!reader.open_current() || reader.snapshot_id() < first_id) {
        ++report.violations;
        continue;
      }
      auto engine = make_manifest_query_engine(fx.services, fx.topology);
      // The live walk (snapshot + tail fallback) must be bit-identical to
      // the scatter walk regardless of where the roll died.
      if (!ancestry_equal(engine->ancestry("data/late0", 1), want_tail))
        ++report.violations;
      // The pre-crash snapshot must keep serving complete, correct
      // time-travel ancestry: nothing lost, nothing duplicated.
      const AncestryResult as_of =
          engine->ancestry_as_of(first_id, "data/derived1", 1);
      if (!as_of.missing.empty() || !ancestry_equal(as_of, want_frozen))
        ++report.violations;
    }
  }
  return report;
}

LsbCrashReport check_lsb_crash_sweep(const PropertyCheckOptions& options) {
  constexpr Architecture arch = Architecture::kS3SegmentLog;
  LsbCrashReport report;

  // Discover the lsb.* crash surface (seal, index publication, cleaner)
  // from an uninjected run that exercises all three phases.
  std::vector<std::string> points;
  {
    Fixture fx(arch, options.seed, aggressive_staleness(), options);
    drive(fx, mini_trace(options.seed, options.mini_files));
    settle(fx);
    auto* lsb = static_cast<LsbBackend*>(fx.backend.get());
    drive(fx, tail_trace(options.seed));
    settle(fx);
    lsb->publish_index();
    lsb->compact();
    for (const std::string& p : fx.env.failures().observed_points())
      if (util::starts_with(p, "lsb.")) points.push_back(p);
  }

  for (const std::string& point : points) {
    for (std::uint64_t occurrence : {std::uint64_t{1}, std::uint64_t{2}}) {
      Fixture fx(arch, options.seed + occurrence, aggressive_staleness(),
                 options);
      // Base workload, fully settled and checkpointed: committed ground
      // truth the crash must never touch.
      drive(fx, mini_trace(options.seed, options.mini_files));
      settle(fx);
      auto* lsb = static_cast<LsbBackend*>(fx.backend.get());
      lsb->publish_index();
      // Ground truth from an object the injected phase never touches:
      // the tail trace re-flushes data/derived1@1 (its observer saw only
      // the read), and a re-stored (object, version) replaces the record
      // set -- by design, on every architecture -- so derived1 itself is
      // not crash-invariant. Its ancestor derived0 is.
      const AncestryResult want = fetch_ancestry(*fx.backend, "data/derived0", 1);

      // The injected phase: more closes, a publication, a cleaner pass.
      fx.env.failures().arm_crash(point, occurrence);
      bool crashed = !drive(fx, tail_trace(options.seed));
      try {
        lsb->publish_index();
      } catch (const sim::CrashError&) {
        crashed = true;
      }
      try {
        lsb->compact();
      } catch (const sim::CrashError&) {
        crashed = true;
      }
      fx.env.failures().disarm(point);
      fx.env.clock().drain();
      ++report.crash_scenarios;
      if (crashed) ++report.crashed_runs;

      // No torn index, no causal hole in the raw settled state.
      const StateViolations v = check_state(arch, fx.services, *fx.topology);
      report.violations += v.atomicity + v.causal;

      // Client restart: a fresh backend over the same store recovers and
      // must serve the committed closure bit-identically.
      LsbBackendConfig cfg;
      cfg.shard_count = options.shard_count;
      cfg.parallelism = options.parallelism;
      LsbBackend fresh(fx.services, cfg);
      fresh.recover();
      if (!ancestry_equal(fetch_ancestry(fresh, "data/derived0", 1), want))
        ++report.violations;
      // And an uninjected cleaner pass must never change query results.
      fresh.compact();
      if (!ancestry_equal(fetch_ancestry(fresh, "data/derived0", 1), want))
        ++report.violations;
    }
  }
  return report;
}

}  // namespace provcloud::cloudprov
