// The MD5+nonce consistency read loop shared by Architectures 2 and 3.
//
// Both store data in S3 (metadata: the nonce) and provenance in SimpleDB
// (one attribute: MD5(data || nonce)). Under eventual consistency S3 can
// return older data while SimpleDB returns newer provenance or vice versa;
// the MD5 comparison detects this and the read is reissued "until we get
// consistent provenance and data" (section 4.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"

namespace provcloud::cloudprov {

/// Metadata keys the data objects carry in Architectures 2/3.
inline constexpr const char* kNonceMetaKey = "x-nonce";
inline constexpr const char* kVersionMetaKey = "x-version";

/// Attribute under which the consistency token lives in SimpleDB.
inline constexpr const char* kMd5Attribute = "MD5";

/// Backoff a reader sleeps between consistency/visibility retry rounds,
/// charged to the caller's ledger timeline as "idle" (mirror of the write
/// side's deadline-flush idle charge): staleness retries trade elapsed
/// time for a consistent view, and the timelines show it. Zero-retry runs
/// (strong consistency) charge nothing -- bit-identical to before.
inline constexpr sim::SimTime kReadRetryIdle = 20 * sim::kMillisecond;

/// Charge one consistency-retry backoff round: kReadRetryIdle onto the
/// caller's ledger timeline as "idle", plus the always-on retry metrics.
/// Every retry site funnels through here so the counters cannot drift from
/// the ledger accounting.
inline void charge_read_retry(aws::CloudEnv& env) {
  env.latency_ledger().charge(kReadRetryIdle, "idle");
  env.metrics().counter("read.retries").add(1);
  env.metrics().counter("idle.read_retry_us").add(kReadRetryIdle);
}

/// Nonce of a version ("the nonce is typically the file version").
std::string nonce_for_version(std::uint32_t version);

/// The read path: GET data, look up the provenance item named by the nonce
/// in the object's shard domain (resolved through the topology), verify
/// MD5(data || nonce); on any mismatch or miss, retry the whole round.
/// After max_retries the best-effort pair is returned with verified=false.
BackendResult<ReadResult> consistency_checked_read(
    CloudServices& services, const DomainTopology& topology,
    const std::string& object, std::uint32_t max_retries);

/// Fetch provenance records of (object, version) from the object's shard
/// domain, retrying empty reads (propagation races) and resolving S3 spill
/// pointers.
BackendResult<std::vector<pass::ProvenanceRecord>> fetch_sdb_provenance(
    CloudServices& services, const DomainTopology& topology,
    const std::string& object, std::uint32_t version,
    std::uint32_t max_retries);

}  // namespace provcloud::cloudprov
