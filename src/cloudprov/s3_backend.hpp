// Architecture 1 (section 4.1): PASS with S3 as the only storage substrate.
//
// "Each PASS file maps to an S3 object. We store an object's provenance as
// S3 metadata. ... When the application issues a close on a file, we send
// both the file and its provenance to S3."
//
// Protocol on close:
//   1. read the data + provenance caches (done by PASS; arrives as the
//      FlushUnit);
//   2. convert records to S3 metadata attribute-value pairs; records larger
//      than the spill threshold go to their own S3 objects first (the
//      paper's workaround for the 2 KB metadata limit -- which, as the paper
//      notes, weakens read correctness for exactly those records);
//   3. a single PUT carries the object and its provenance together --
//      atomicity and consistency by construction.
//
// Transient objects (processes, pipes) become zero-byte S3 objects carrying
// only metadata.
#pragma once

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"

namespace provcloud::cloudprov {

class S3Backend final : public ProvenanceBackend {
 public:
  /// `parallelism` bounds read_many's fan-out (1 = the paper's sequential
  /// protocol); Arch 1 keeps no SimpleDB shards, so its topology is a
  /// single-shard executor handle only.
  explicit S3Backend(CloudServices& services, std::size_t parallelism = 1);

  Architecture architecture() const override { return Architecture::kS3Only; }
  std::string name() const override { return "S3"; }

  /// Sessions on Arch 1 flush every submit immediately
  /// (supports_group_commit is false): the single-PUT close is what the
  /// atomicity and consistency rows of Table 1 rest on, so submits never
  /// wait for a group no matter the configured max_group.
  std::unique_ptr<Session> do_open_session(SessionConfig config) override;
  /// One blocking single-PUT store per close, in submit order.
  void commit_group(const std::vector<TicketState*>& group,
                    sim::LatencyLedger* ledger) override;
  std::shared_ptr<const DomainTopology> topology() const override {
    return topology_;
  }
  BackendResult<ReadResult> read(const std::string& object,
                                 std::uint32_t max_retries = 64) override;
  BackendResult<std::vector<pass::ProvenanceRecord>> get_provenance(
      const std::string& object, std::uint32_t version) override;
  void recover() override {}  // single-PUT protocol: nothing to repair

  PropertyClaims claims() const override {
    return PropertyClaims{.atomicity = true,
                          .consistency = true,
                          .causal_ordering = true,
                          .efficient_query = false};
  }

 private:
  /// The paper's close protocol for one unit (the commit_group body).
  void store_one(const pass::FlushUnit& unit);

  /// Resolve spill pointers in decoded records, charging GETs.
  BackendResult<std::vector<pass::ProvenanceRecord>> resolve_spills(
      std::vector<pass::ProvenanceRecord> records, std::uint32_t max_retries);

  CloudServices* services_;
  std::shared_ptr<const DomainTopology> topology_;
};

}  // namespace provcloud::cloudprov
