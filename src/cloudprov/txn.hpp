// WAL transaction records (Architecture 3, section 4.3).
//
// The client's SQS queue is its write-ahead log. One file close becomes one
// transaction:
//
//   begin  "B;<txid>;<n>"                      n = records between B and C
//   data   "D;<txid>;<tempkey>;<object>;<version>;<nonce>;<kind>"
//   prov   "P;<txid>;<object>;<version>;<idx>;<rec>|<rec>|..."  (<= 8 KB)
//   md5    "M;<txid>;<object>;<version>;<nonce>;<md5hex>"
//   commit "C;<txid>"
//
// Fields are %-escaped so object names with ';' survive. Provenance records
// inside a chunk are serialized with serialize_record and '|'-separated
// (with '|' escaped inside fields as %7c by the chunk builder).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pass/local_cache.hpp"
#include "pass/record.hpp"
#include "util/bytes.hpp"

namespace provcloud::cloudprov {

/// Target payload for provenance chunks; leaves headroom under SQS's 8 KB.
inline constexpr std::size_t kWalChunkTarget = 7 * util::kKiB + 512;

struct WalRecord {
  enum class Kind { kBegin, kData, kProv, kMd5, kCommit };

  Kind kind = Kind::kBegin;
  std::string txid;
  // kBegin:
  std::uint32_t record_count = 0;  // records between begin and commit
  // kData:
  std::string temp_key;
  // kData / kProv / kMd5:
  std::string object;
  std::uint32_t version = 0;
  // kData / kMd5:
  std::string nonce;
  // kData: what kind of pnode this transaction persists.
  pass::PnodeKind pnode_kind = pass::PnodeKind::kFile;
  // kProv:
  std::uint32_t chunk_index = 0;
  std::vector<pass::ProvenanceRecord> records;
  // kMd5:
  std::string md5;
};

/// Serialize to an SQS message body (always <= 8 KB for chunks produced by
/// build_transaction).
util::Bytes encode_wal_record(const WalRecord& record);

/// Parse a message body; nullopt on malformed input.
std::optional<WalRecord> decode_wal_record(util::BytesView body);

/// A fully assembled transaction plus the receipt handles of its messages.
struct WalTransaction {
  std::string txid;
  std::optional<WalRecord> begin;
  std::optional<WalRecord> data;
  std::vector<WalRecord> prov_chunks;
  std::optional<WalRecord> md5;
  bool committed = false;
  std::vector<std::string> receipt_handles;

  /// All log records present (count matches the begin record)?
  bool complete() const;
};

/// Split a flush unit's provenance into WAL records. `temp_key` names the
/// temporary S3 object holding the data; `md5` is MD5(data || nonce).
/// Returns the ordered log records: begin, data, prov chunks..., md5,
/// commit.
std::vector<WalRecord> build_transaction(const std::string& txid,
                                         const pass::FlushUnit& unit,
                                         const std::string& temp_key,
                                         const std::string& nonce,
                                         const std::string& md5);

}  // namespace provcloud::cloudprov
