#include "cloudprov/ancestry.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "cloudprov/serialize.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

using pass::ObjectVersion;

void AncestryGraph::add_node(AncestryNode node) {
  const ObjectVersion id = node.id;
  for (const ObjectVersion& ancestor : node.ancestors)
    reverse_.emplace(ancestor, id);
  nodes_[id] = std::move(node);
}

const AncestryNode* AncestryGraph::find(const ObjectVersion& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<ObjectVersion> AncestryGraph::descendants_of(
    const ObjectVersion& id) const {
  std::vector<ObjectVersion> out;
  auto [lo, hi] = reverse_.equal_range(id);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::set<ObjectVersion> AncestryGraph::ancestor_closure(
    const ObjectVersion& id) const {
  std::set<ObjectVersion> visited;
  std::deque<ObjectVersion> frontier{id};
  while (!frontier.empty()) {
    const ObjectVersion cur = frontier.front();
    frontier.pop_front();
    const AncestryNode* node = find(cur);
    if (node == nullptr) continue;
    for (const ObjectVersion& a : node->ancestors)
      if (visited.insert(a).second) frontier.push_back(a);
  }
  visited.erase(id);
  return visited;
}

std::set<ObjectVersion> AncestryGraph::descendant_closure(
    const ObjectVersion& id) const {
  std::set<ObjectVersion> visited;
  std::deque<ObjectVersion> frontier{id};
  while (!frontier.empty()) {
    const ObjectVersion cur = frontier.front();
    frontier.pop_front();
    for (const ObjectVersion& d : descendants_of(cur))
      if (visited.insert(d).second) frontier.push_back(d);
  }
  visited.erase(id);
  return visited;
}

std::vector<ObjectVersion> AncestryGraph::topological_order() const {
  // Kahn's algorithm over the ancestor edges (edge ancestor -> node).
  std::map<ObjectVersion, std::size_t> indegree;
  for (const auto& [id, node] : nodes_) {
    indegree.try_emplace(id, 0);
    for (const ObjectVersion& a : node.ancestors)
      if (nodes_.count(a) > 0) ++indegree[id];
  }
  std::deque<ObjectVersion> ready;
  for (const auto& [id, deg] : indegree)
    if (deg == 0) ready.push_back(id);
  std::vector<ObjectVersion> out;
  out.reserve(nodes_.size());
  while (!ready.empty()) {
    const ObjectVersion cur = ready.front();
    ready.pop_front();
    out.push_back(cur);
    for (const ObjectVersion& d : descendants_of(cur)) {
      auto it = indegree.find(d);
      if (it == indegree.end()) continue;
      if (--it->second == 0) ready.push_back(d);
    }
  }
  PROVCLOUD_REQUIRE_MSG(out.size() == nodes_.size(),
                        "provenance graph contains a cycle");
  return out;
}

std::string AncestryGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=BT;\n";
  const auto quote = [](const ObjectVersion& id) {
    std::string s = id.to_string();
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  for (const auto& [id, node] : nodes_) {
    const char* shape = node.kind == "process" ? "ellipse"
                        : node.kind == "pipe"  ? "diamond"
                                               : "box";
    os << "  \"" << quote(id) << "\" [shape=" << shape << "];\n";
  }
  for (const auto& [id, node] : nodes_) {
    for (const pass::ProvenanceRecord& r : node.records) {
      if (!r.is_xref()) continue;
      const bool dataflow = r.attribute == pass::attr::kInput;
      os << "  \"" << quote(id) << "\" -> \"" << quote(r.xref()) << "\""
         << (dataflow ? "" : " [style=dashed]") << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

AncestryResult walk_ancestry(const ProvenanceFetcher& fetch,
                             const std::string& object, std::uint32_t version,
                             std::size_t max_nodes) {
  AncestryResult result;
  std::set<ObjectVersion> enqueued;
  std::deque<ObjectVersion> frontier;
  const ObjectVersion root{object, version};
  frontier.push_back(root);
  enqueued.insert(root);

  while (!frontier.empty() && result.graph.nodes().size() < max_nodes) {
    // One fetch round per pending frontier, capped so the graph cannot
    // overshoot max_nodes even when every fetched id resolves.
    const std::size_t take = std::min(
        frontier.size(), max_nodes - result.graph.nodes().size());
    std::vector<ObjectVersion> batch(frontier.begin(),
                                     frontier.begin() +
                                         static_cast<std::ptrdiff_t>(take));
    frontier.erase(frontier.begin(),
                   frontier.begin() + static_cast<std::ptrdiff_t>(take));
    std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>> fetched =
        fetch(batch);
    PROVCLOUD_REQUIRE_MSG(fetched.size() == batch.size(),
                          "ProvenanceFetcher result count mismatch");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!fetched[i]) {
        result.missing.push_back(batch[i]);
        continue;
      }
      AncestryNode node;
      node.id = batch[i];
      node.records = std::move(*fetched[i]);
      for (const pass::ProvenanceRecord& r : node.records) {
        if (r.attribute == pass::attr::kType && !r.is_xref())
          node.kind = r.text();
        if (!r.is_xref()) continue;
        node.ancestors.push_back(r.xref());
        if (enqueued.insert(r.xref()).second) frontier.push_back(r.xref());
      }
      result.graph.add_node(std::move(node));
    }
  }
  return result;
}

AncestryResult fetch_ancestry(ProvenanceBackend& backend,
                              const std::string& object, std::uint32_t version,
                              std::size_t max_nodes) {
  // The classic walk: one get_provenance round trip per node, expressed as
  // a degenerate batch fetcher (same code path as the manifest walk).
  return walk_ancestry(
      [&backend](const std::vector<ObjectVersion>& ids) {
        std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>> out;
        out.reserve(ids.size());
        for (const ObjectVersion& id : ids)
          out.push_back(backend.get_provenance(id.object, id.version));
        return out;
      },
      object, version, max_nodes);
}

}  // namespace provcloud::cloudprov
