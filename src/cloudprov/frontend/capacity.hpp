// Per-tenant provisioned-throughput capacity model, after kivaloo's
// dynamodb-kv capacity accounting: each tenant buys a sustained rate of
// capacity units per virtual second plus a burst allowance, and a token
// bucket refilled from the simulated clock decides admission. A refusal
// carries a Retry-After estimate so the frontend can hand back a typed
// kThrottled error instead of silently queueing unbounded work.
#pragma once

#include <cstdint>

#include "sim/clock.hpp"

namespace provcloud::cloudprov {

/// What a tenant provisioned. Units are abstract "capacity units": a close
/// costs 1 plus one unit per FrontendConfig::capacity_unit_bytes of data,
/// mirroring how DynamoDB charges write units per KB. `burst` must cover
/// the largest single close or that close can never be admitted.
struct TenantQuota {
  /// Sustained capacity units per virtual second.
  double rate_per_sec = 100.0;
  /// Bucket capacity: units a quiet tenant banks for a burst.
  double burst = 200.0;
};

/// Deterministic token bucket over virtual time. Not thread-safe; the
/// Frontend serializes access under its own lock.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(const TenantQuota& quota, sim::SimTime now)
      : quota_(quota), tokens_(quota.burst), last_(now) {}

  /// Consume `cost` units at virtual time `now`. On refusal, *retry_after
  /// (optional out) receives the virtual wait until `cost` units will have
  /// refilled -- the 503's Retry-After. A cost above the burst capacity is
  /// never admissible; retry_after then reports the wait as if the bucket
  /// could hold it, which at least scales with the deficit.
  bool try_consume(double cost, sim::SimTime now,
                   sim::SimTime* retry_after = nullptr);

  /// Units available at `now` (const: computes the refill, mutates nothing).
  double available(sim::SimTime now) const;

  const TenantQuota& quota() const { return quota_; }

 private:
  TenantQuota quota_;
  double tokens_ = 0.0;
  sim::SimTime last_ = 0;
};

}  // namespace provcloud::cloudprov
