// Frontend: the million-client front door onto one backend's session
// engine, after kivaloo's mux/ connection multiplexer.
//
// The session layer (PR 6) made a backend accept many concurrent sessions,
// but nothing fans thousands of tenants into it, and nothing says "no" when
// offered load exceeds capacity. The Frontend owns a bounded pool of
// sessions and an admission controller in front of them:
//
//   offer(tenant, unit)  -- thread-safe; any tenant thread. Admission runs
//       here: the tenant's token bucket (TokenBucket, provisioned
//       rate + burst) must cover the close's capacity cost, and the
//       tenant's bounded queue must have room. A refusal is a typed
//       BackendErrorCode::kThrottled with Retry-After metadata -- never a
//       blocked caller, never unbounded memory, never back-pressure into
//       the commit daemon.
//   pump()               -- driver thread only. Drains accepted closes
//       round-robin across tenants into the session pool (tenant hashed to
//       a session, kivaloo-mux style) and reaps retired closes into
//       per-tenant latency histograms and counters.
//   sync_all()           -- driver thread only. Durability barrier across
//       the whole pool.
//
// Overflow policy: kReject refuses the NEW close when the tenant queue is
// full; kShedOldest admits it and sheds the tenant's oldest queued close
// instead (its FrontendTicket resolves to kThrottled). Either way only the
// offending tenant pays -- other tenants' queues and quotas are untouched.
//
// With admission_control off the frontend is a pure multiplexer (no
// metering, no bounds): the configuration the burst-storm bench uses to
// show every tenant's tail latency collapsing together.
//
// Metering (obs::MetricsRegistry): frontend.offered / .accepted /
// .throttled / .shed / .completed / .failed counters, a
// frontend.queue_depth histogram per pump, and per tenant
// tenant.<id>.close_latency_us (frontend queue wait + the ticket's
// end-to-end close latency).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "cloudprov/frontend/capacity.hpp"
#include "cloudprov/session.hpp"

namespace provcloud::cloudprov {

/// What happens to a close offered to a full tenant queue.
enum class OverflowPolicy { kReject, kShedOldest };

const char* to_string(OverflowPolicy policy);

struct FrontendConfig {
  /// Sessions the frontend fans tenants into (each tenant sticks to one).
  std::size_t session_pool = 4;
  /// Accepted-but-unforwarded closes a tenant may queue between pumps.
  std::size_t tenant_queue_cap = 64;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Off: no metering, no queue bounds -- a pure multiplexer.
  bool admission_control = true;
  /// Quota for tenants without an explicit entry in `quotas`.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota, std::less<>> quotas;
  /// A close costs 1 capacity unit plus one per this many data bytes
  /// (rounded up); 0 charges a flat 1 unit regardless of size.
  std::uint64_t capacity_unit_bytes = 4096;
  /// Template for the pool's sessions; client_id becomes "<id>-<slot>".
  SessionConfig session;
};

/// Shared state of one accepted close. Fields before `phase` are written
/// by the accepting/forwarding thread and published by the release store
/// into `phase`; readers acquire `phase` first (FrontendTicket does).
struct FrontendTicketState {
  enum Phase : int { kQueued = 0, kForwarded = 1, kShed = 2 };

  std::string tenant;
  pass::FlushUnit unit;
  double cost = 1.0;
  sim::SimTime accepted_at = 0;
  sim::SimTime forwarded_at = 0;  // valid from kForwarded
  Ticket backend;                 // valid from kForwarded
  BackendError refusal;           // valid at kShed (kThrottled)
  std::atomic<int> phase{kQueued};
};

/// Handle to one accepted close. Cheap to copy; outlives the frontend.
class FrontendTicket {
 public:
  FrontendTicket() = default;
  explicit FrontendTicket(std::shared_ptr<const FrontendTicketState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  /// The close reached a final state: durable, failed, or shed.
  bool done() const {
    if (state_ == nullptr) return false;
    const int phase = state_->phase.load(std::memory_order_acquire);
    if (phase == FrontendTicketState::kShed) return true;
    return phase == FrontendTicketState::kForwarded && state_->backend.done();
  }

  /// done() and the close is durable (a shed close is never ok).
  bool ok() const {
    return done() &&
           state_->phase.load(std::memory_order_acquire) ==
               FrontendTicketState::kForwarded &&
           state_->backend.ok();
  }

  /// The refusal (kThrottled, when shed) or the backend's per-close
  /// failure; call only when done() && !ok().
  const BackendError& error() const {
    if (state_->phase.load(std::memory_order_acquire) ==
        FrontendTicketState::kShed)
      return state_->refusal;
    return state_->backend.error();
  }

 private:
  std::shared_ptr<const FrontendTicketState> state_;
};

class Frontend {
 public:
  /// The pool's sessions are opened immediately from `config.session`.
  /// Metrics/histograms land in `env.metrics()`.
  Frontend(ProvenanceBackend& backend, aws::CloudEnv& env,
           FrontendConfig config = FrontendConfig{});
  ~Frontend();
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Offer one close on behalf of `tenant`. Thread-safe; never blocks on
  /// the cloud. Admission refusals return kThrottled (capacity: with a
  /// Retry-After estimate; queue overflow under kReject: retry at the
  /// caller's pace). Under kShedOldest the offer is admitted and the
  /// tenant's oldest queued close is shed instead.
  util::Expected<FrontendTicket, BackendError> offer(
      const std::string& tenant, const pass::FlushUnit& unit);

  /// Forward accepted closes into the session pool (round-robin across
  /// tenants) and reap retired ones. Driver thread only. May throw
  /// sim::CrashError out of an inline flush, like Session::submit.
  void pump();

  /// Durability barrier over the whole pool: pump, sync every session,
  /// reap. Returns the first per-close backend failure since the last
  /// barrier. Driver thread only.
  BackendResult<void> sync_all();

  struct TenantStats {
    std::uint64_t offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t throttled = 0;  // capacity refusals
    std::uint64_t rejected = 0;   // queue-full refusals (kReject)
    std::uint64_t shed = 0;       // queue-full victims (kShedOldest)
    std::uint64_t completed = 0;  // durable closes
    std::uint64_t failed = 0;     // backend per-close failures
  };
  TenantStats tenant_stats(const std::string& tenant) const;
  std::vector<std::string> tenants() const;

  /// Accepted closes not yet forwarded into a session.
  std::size_t queued() const;
  /// Forwarded closes not yet reaped.
  std::size_t in_flight() const;

  const FrontendConfig& config() const { return config_; }

 private:
  struct TenantState {
    TokenBucket bucket;
    std::deque<std::shared_ptr<FrontendTicketState>> queue;
    TenantStats stats;
    obs::Histogram* close_latency = nullptr;
  };

  /// Find-or-create tenant state (mu_ held).
  TenantState& tenant_locked(const std::string& tenant);
  double close_cost(const pass::FlushUnit& unit) const;
  /// Move retired in-flight closes into per-tenant stats (mu_ held).
  void reap_locked();

  ProvenanceBackend* backend_;
  aws::CloudEnv* env_;
  FrontendConfig config_;
  std::vector<std::unique_ptr<Session>> pool_;

  obs::Counter* offered_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* throttled_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, TenantState, std::less<>> tenants_;
  std::vector<std::shared_ptr<FrontendTicketState>> in_flight_;
};

}  // namespace provcloud::cloudprov
