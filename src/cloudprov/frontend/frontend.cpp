#include "cloudprov/frontend/frontend.hpp"

#include <algorithm>
#include <utility>

#include "cloudprov/shard_router.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kReject: return "reject";
    case OverflowPolicy::kShedOldest: return "shed-oldest";
  }
  return "?";
}

Frontend::Frontend(ProvenanceBackend& backend, aws::CloudEnv& env,
                   FrontendConfig config)
    : backend_(&backend), env_(&env), config_(std::move(config)) {
  PROVCLOUD_REQUIRE_MSG(config_.session_pool > 0,
                        "Frontend needs at least one session");
  pool_.reserve(config_.session_pool);
  for (std::size_t i = 0; i < config_.session_pool; ++i) {
    SessionConfig sc = config_.session;
    sc.client_id = config_.session.client_id + "-" + std::to_string(i);
    pool_.push_back(backend_->open_session(sc));
  }
  obs::MetricsRegistry& m = env_->metrics();
  offered_ = &m.counter("frontend.offered");
  accepted_ = &m.counter("frontend.accepted");
  throttled_ = &m.counter("frontend.throttled");
  shed_ = &m.counter("frontend.shed");
  completed_ = &m.counter("frontend.completed");
  failed_ = &m.counter("frontend.failed");
  queue_depth_ = &m.histogram("frontend.queue_depth");
}

Frontend::~Frontend() = default;

Frontend::TenantState& Frontend::tenant_locked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantState state;
    auto quota = config_.quotas.find(tenant);
    state.bucket = TokenBucket(
        quota != config_.quotas.end() ? quota->second : config_.default_quota,
        env_->clock().now());
    state.close_latency =
        &env_->metrics().histogram("tenant." + tenant + ".close_latency_us");
    it = tenants_.emplace(tenant, std::move(state)).first;
  }
  return it->second;
}

double Frontend::close_cost(const pass::FlushUnit& unit) const {
  if (config_.capacity_unit_bytes == 0) return 1.0;
  const std::uint64_t bytes = unit.data == nullptr ? 0 : unit.data->size();
  return 1.0 + static_cast<double>((bytes + config_.capacity_unit_bytes - 1) /
                                   config_.capacity_unit_bytes);
}

util::Expected<FrontendTicket, BackendError> Frontend::offer(
    const std::string& tenant, const pass::FlushUnit& unit) {
  const sim::SimTime now = env_->clock().now();
  const double cost = close_cost(unit);
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenant_locked(tenant);
  state.stats.offered += 1;
  offered_->add(1);
  if (config_.admission_control) {
    sim::SimTime retry_after = 0;
    if (!state.bucket.try_consume(cost, now, &retry_after)) {
      state.stats.throttled += 1;
      throttled_->add(1);
      return backend_throttled(
          "tenant " + tenant + " over provisioned capacity", retry_after);
    }
    if (state.queue.size() >= config_.tenant_queue_cap) {
      if (config_.overflow == OverflowPolicy::kReject) {
        state.stats.rejected += 1;
        throttled_->add(1);
        return backend_throttled("tenant " + tenant + " queue full", 0);
      }
      // kShedOldest: admit the new close, shed the tenant's oldest queued
      // one -- its holder sees a typed kThrottled, never a lost write.
      std::shared_ptr<FrontendTicketState> victim =
          std::move(state.queue.front());
      state.queue.pop_front();
      victim->refusal =
          BackendError{BackendErrorCode::kThrottled,
                       "shed: tenant " + tenant + " queue overflow", 0};
      victim->phase.store(FrontendTicketState::kShed,
                          std::memory_order_release);
      state.stats.shed += 1;
      shed_->add(1);
    }
  }
  auto ticket = std::make_shared<FrontendTicketState>();
  ticket->tenant = tenant;
  ticket->unit = unit;
  ticket->cost = cost;
  ticket->accepted_at = now;
  state.queue.push_back(ticket);
  state.stats.accepted += 1;
  accepted_->add(1);
  return FrontendTicket(
      std::shared_ptr<const FrontendTicketState>(std::move(ticket)));
}

void Frontend::pump() {
  // Round-robin across tenants: pop one queued close per tenant per round
  // so a storming tenant cannot starve the others' forwarding, then submit
  // outside mu_ (the submit may run a whole flush inline).
  std::string cursor;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t depth = 0;
    for (const auto& [name, state] : tenants_) depth += state.queue.size();
    queue_depth_->record(depth);
  }
  while (true) {
    std::shared_ptr<FrontendTicketState> next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = tenants_.upper_bound(cursor);
      for (std::size_t step = 0; step < tenants_.size(); ++step) {
        if (it == tenants_.end()) it = tenants_.begin();
        if (!it->second.queue.empty()) {
          next = std::move(it->second.queue.front());
          it->second.queue.pop_front();
          cursor = it->first;
          break;
        }
        ++it;
      }
    }
    if (next == nullptr) break;
    Session& session =
        *pool_[ShardRouter::stable_hash(next->tenant) % pool_.size()];
    next->forwarded_at = env_->clock().now();
    next->backend = session.submit(next->unit);
    next->phase.store(FrontendTicketState::kForwarded,
                      std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.push_back(std::move(next));
  }
  std::lock_guard<std::mutex> lock(mu_);
  reap_locked();
}

void Frontend::reap_locked() {
  auto keep = in_flight_.begin();
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    FrontendTicketState& state = **it;
    if (!state.backend.done()) {
      *keep++ = std::move(*it);
      continue;
    }
    TenantState& tenant = tenant_locked(state.tenant);
    if (state.backend.ok()) {
      tenant.stats.completed += 1;
      completed_->add(1);
    } else {
      tenant.stats.failed += 1;
      failed_->add(1);
    }
    const sim::SimTime queue_wait = state.forwarded_at - state.accepted_at;
    tenant.close_latency->record(queue_wait + state.backend.elapsed());
  }
  in_flight_.erase(keep, in_flight_.end());
}

BackendResult<void> Frontend::sync_all() {
  pump();
  std::optional<BackendError> first_error;
  for (auto& session : pool_) {
    BackendResult<void> result = session->sync();
    if (!result.has_value() && !first_error.has_value())
      first_error = result.error();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    reap_locked();
  }
  if (first_error.has_value()) return util::Unexpected(*first_error);
  return {};
}

Frontend::TenantStats Frontend::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

std::vector<std::string> Frontend::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

std::size_t Frontend::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t depth = 0;
  for (const auto& [name, state] : tenants_) depth += state.queue.size();
  return depth;
}

std::size_t Frontend::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.size();
}

}  // namespace provcloud::cloudprov
