#include "cloudprov/frontend/capacity.hpp"

#include <algorithm>

namespace provcloud::cloudprov {

namespace {

double refilled(double tokens, const TenantQuota& quota, sim::SimTime from,
                sim::SimTime to) {
  if (to > from && quota.rate_per_sec > 0.0) {
    tokens += static_cast<double>(to - from) * quota.rate_per_sec /
              static_cast<double>(sim::kSecond);
  }
  return std::min(tokens, quota.burst);
}

}  // namespace

bool TokenBucket::try_consume(double cost, sim::SimTime now,
                              sim::SimTime* retry_after) {
  tokens_ = refilled(tokens_, quota_, last_, now);
  last_ = std::max(last_, now);
  if (tokens_ >= cost) {
    tokens_ -= cost;
    return true;
  }
  if (retry_after != nullptr) {
    if (quota_.rate_per_sec <= 0.0) {
      *retry_after = 0;  // never refills; no honest estimate exists
    } else {
      const double deficit = cost - tokens_;
      *retry_after = static_cast<sim::SimTime>(
                         deficit * static_cast<double>(sim::kSecond) /
                         quota_.rate_per_sec) +
                     1;
    }
  }
  return false;
}

double TokenBucket::available(sim::SimTime now) const {
  return refilled(tokens_, quota_, last_, now);
}

}  // namespace provcloud::cloudprov
