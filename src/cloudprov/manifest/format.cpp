#include "cloudprov/manifest/format.hpp"

#include <algorithm>

#include "cloudprov/serialize.hpp"

namespace provcloud::cloudprov::manifest {

namespace {

constexpr const char* kBlockMagic = "PMB1\n";
constexpr const char* kListMagic = "PML1\n";

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

/// Cursor over a length-prefixed buffer. All read_* methods return false on
/// any framing violation, which the decoders surface as nullopt.
struct Cursor {
  const std::string& buf;
  std::size_t pos = 0;

  bool expect(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (buf.compare(pos, n, literal) != 0) return false;
    pos += n;
    return true;
  }

  bool read_u64(std::uint64_t& out) {
    if (pos >= buf.size() || buf[pos] < '0' || buf[pos] > '9') return false;
    std::uint64_t v = 0;
    while (pos < buf.size() && buf[pos] >= '0' && buf[pos] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(buf[pos] - '0');
      ++pos;
    }
    out = v;
    return true;
  }

  bool read_sep() {
    if (pos >= buf.size() || buf[pos] != ' ') return false;
    ++pos;
    return true;
  }

  bool read_nl() {
    if (pos >= buf.size() || buf[pos] != '\n') return false;
    ++pos;
    return true;
  }

  bool read_bytes(std::size_t n, std::string& out) {
    if (pos + n > buf.size()) return false;
    out.assign(buf, pos, n);
    pos += n;
    return true;
  }
};

void encode_record(std::string& out, const pass::ProvenanceRecord& r) {
  const std::string value = r.value_string();
  append_u64(out, r.attribute.size());
  out += ' ';
  append_u64(out, value.size());
  out += ' ';
  out += r.is_xref() ? '1' : '0';
  out += '\n';
  out += r.attribute;
  out += value;
}

bool decode_record(Cursor& c, pass::ProvenanceRecord& out) {
  std::uint64_t attr_len = 0, value_len = 0, xref = 0;
  if (!c.read_u64(attr_len) || !c.read_sep() || !c.read_u64(value_len) ||
      !c.read_sep() || !c.read_u64(xref) || !c.read_nl())
    return false;
  std::string attribute, value;
  if (!c.read_bytes(attr_len, attribute) || !c.read_bytes(value_len, value))
    return false;
  if (xref == 1) {
    std::string object;
    std::uint32_t version = 0;
    if (!parse_item_name(value, object, version)) return false;
    out = pass::make_xref_record(std::move(attribute),
                                 pass::ObjectVersion{object, version});
  } else {
    out = pass::make_text_record(std::move(attribute), std::move(value));
  }
  return true;
}

}  // namespace

std::string manifest_list_key(std::uint64_t snapshot_id) {
  return "snap-" + std::to_string(snapshot_id) + "/manifest-list";
}

std::string manifest_block_key(std::uint64_t snapshot_id, std::size_t block) {
  return "snap-" + std::to_string(snapshot_id) + "/block-" +
         std::to_string(block);
}

std::string encode_block(const std::vector<ManifestEntry>& entries) {
  std::string out = kBlockMagic;
  append_u64(out, entries.size());
  out += '\n';
  for (const ManifestEntry& e : entries) {
    append_u64(out, e.id.object.size());
    out += ' ';
    append_u64(out, e.id.version);
    out += ' ';
    append_u64(out, e.records.size());
    out += '\n';
    out += e.id.object;
    for (const pass::ProvenanceRecord& r : e.records) encode_record(out, r);
  }
  return out;
}

std::optional<std::vector<ManifestEntry>> decode_block(const std::string& raw) {
  Cursor c{raw};
  if (!c.expect(kBlockMagic)) return std::nullopt;
  std::uint64_t count = 0;
  if (!c.read_u64(count) || !c.read_nl()) return std::nullopt;
  std::vector<ManifestEntry> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t object_len = 0, version = 0, records = 0;
    if (!c.read_u64(object_len) || !c.read_sep() || !c.read_u64(version) ||
        !c.read_sep() || !c.read_u64(records) || !c.read_nl())
      return std::nullopt;
    ManifestEntry e;
    if (!c.read_bytes(object_len, e.id.object)) return std::nullopt;
    e.id.version = static_cast<std::uint32_t>(version);
    e.records.resize(records);
    for (std::uint64_t r = 0; r < records; ++r)
      if (!decode_record(c, e.records[r])) return std::nullopt;
    out.push_back(std::move(e));
  }
  if (c.pos != raw.size()) return std::nullopt;
  return out;
}

std::string encode_manifest_list(const ManifestList& list) {
  std::string out = kListMagic;
  append_u64(out, list.snapshot_id);
  out += ' ';
  append_u64(out, list.total_entries);
  out += ' ';
  append_u64(out, list.blocks.size());
  out += '\n';
  for (const BlockStats& b : list.blocks) {
    append_u64(out, b.key.size());
    out += ' ';
    append_u64(out, b.min.object.size());
    out += ' ';
    append_u64(out, b.min.version);
    out += ' ';
    append_u64(out, b.max.object.size());
    out += ' ';
    append_u64(out, b.max.version);
    out += ' ';
    append_u64(out, b.entries);
    out += ' ';
    append_u64(out, b.bytes);
    out += '\n';
    out += b.key;
    out += b.min.object;
    out += b.max.object;
  }
  return out;
}

std::optional<ManifestList> decode_manifest_list(const std::string& raw) {
  Cursor c{raw};
  if (!c.expect(kListMagic)) return std::nullopt;
  ManifestList list;
  std::uint64_t block_count = 0;
  if (!c.read_u64(list.snapshot_id) || !c.read_sep() ||
      !c.read_u64(list.total_entries) || !c.read_sep() ||
      !c.read_u64(block_count) || !c.read_nl())
    return std::nullopt;
  list.blocks.reserve(block_count);
  for (std::uint64_t i = 0; i < block_count; ++i) {
    std::uint64_t key_len = 0, min_len = 0, min_ver = 0, max_len = 0,
                  max_ver = 0;
    BlockStats b;
    if (!c.read_u64(key_len) || !c.read_sep() || !c.read_u64(min_len) ||
        !c.read_sep() || !c.read_u64(min_ver) || !c.read_sep() ||
        !c.read_u64(max_len) || !c.read_sep() || !c.read_u64(max_ver) ||
        !c.read_sep() || !c.read_u64(b.entries) || !c.read_sep() ||
        !c.read_u64(b.bytes) || !c.read_nl())
      return std::nullopt;
    if (!c.read_bytes(key_len, b.key) ||
        !c.read_bytes(min_len, b.min.object) ||
        !c.read_bytes(max_len, b.max.object))
      return std::nullopt;
    b.min.version = static_cast<std::uint32_t>(min_ver);
    b.max.version = static_cast<std::uint32_t>(max_ver);
    list.blocks.push_back(std::move(b));
  }
  if (c.pos != raw.size()) return std::nullopt;
  return list;
}

std::optional<std::size_t> find_block(const ManifestList& list,
                                      const pass::ObjectVersion& id) {
  // Blocks are sorted and disjoint: binary search the first block whose max
  // is >= id, then confirm its min is <= id (min/max pruning).
  const auto it = std::lower_bound(
      list.blocks.begin(), list.blocks.end(), id,
      [](const BlockStats& b, const pass::ObjectVersion& v) {
        return b.max < v;
      });
  if (it == list.blocks.end() || id < it->min) return std::nullopt;
  return static_cast<std::size_t>(it - list.blocks.begin());
}

}  // namespace provcloud::cloudprov::manifest
