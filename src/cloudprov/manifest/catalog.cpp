#include "cloudprov/manifest/catalog.hpp"

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/manifest/format.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov::manifest {

namespace {

constexpr const char* kCurrentItem = "current";
constexpr const char* kIdAttr = "id";
constexpr const char* kListKeyAttr = "list-key";
constexpr const char* kEntriesAttr = "entries";

std::string history_item(std::uint64_t snapshot_id) {
  return "snap-" + std::to_string(snapshot_id);
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::optional<std::string> single_value(const aws::SdbItem& attrs,
                                        const char* name) {
  auto it = attrs.find(name);
  if (it == attrs.end() || it->second.empty()) return std::nullopt;
  return *it->second.begin();
}

}  // namespace

Catalog::Catalog(CloudServices& services, std::uint32_t max_retries)
    : services_(&services), max_retries_(max_retries) {}

void Catalog::ensure_domain() {
  auto created = services_->sdb.create_domain(kCatalogDomain);
  PROVCLOUD_REQUIRE_MSG(
      created.has_value(),
      "catalog CreateDomain failed: " + created.error().message);
}

std::optional<CatalogPointer> Catalog::read_row(const std::string& item,
                                                bool retry_invisible) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (attempt > 0)
      charge_read_retry(*services_->env);
    auto got = services_->sdb.get_attributes(kCatalogDomain, item);
    if (got && !got->empty()) {
      const auto id = single_value(*got, kIdAttr);
      const auto list_key = single_value(*got, kListKeyAttr);
      const auto entries = single_value(*got, kEntriesAttr);
      if (!id || !list_key || !entries) return std::nullopt;
      const auto id_v = parse_u64(*id);
      const auto entries_v = parse_u64(*entries);
      if (!id_v || !entries_v) return std::nullopt;
      return CatalogPointer{*id_v, *list_key, *entries_v};
    }
    if (!retry_invisible || attempt >= max_retries_) return std::nullopt;
  }
}

std::optional<CatalogPointer> Catalog::current() {
  // A single round: an absent row legitimately means "never rolled", so
  // retrying emptiness would stall every pre-snapshot read path. A stale
  // (older) committed pointer is still a correct answer.
  return read_row(kCurrentItem, /*retry_invisible=*/false);
}

std::optional<CatalogPointer> Catalog::history(std::uint64_t snapshot_id) {
  const std::optional<CatalogPointer> cur = current();
  if (!cur || snapshot_id > cur->snapshot_id) return std::nullopt;
  return read_row(history_item(snapshot_id), /*retry_invisible=*/true);
}

BackendResult<void> Catalog::publish_history(const CatalogPointer& pointer) {
  auto put = services_->sdb.put_attributes(
      kCatalogDomain, history_item(pointer.snapshot_id),
      {{kIdAttr, std::to_string(pointer.snapshot_id), true},
       {kListKeyAttr, pointer.list_key, true},
       {kEntriesAttr, std::to_string(pointer.total_entries), true}});
  if (!put)
    return backend_error(BackendErrorCode::kServiceError,
                         "catalog history put failed: " + put.error().message);
  return {};
}

BackendResult<void> Catalog::commit(const CatalogPointer& pointer) {
  // Replace semantics make the single PutAttributes the atomic commit
  // point: afterwards every reader that sees the row sees the whole row.
  auto put = services_->sdb.put_attributes(
      kCatalogDomain, kCurrentItem,
      {{kIdAttr, std::to_string(pointer.snapshot_id), true},
       {kListKeyAttr, pointer.list_key, true},
       {kEntriesAttr, std::to_string(pointer.total_entries), true}});
  if (!put)
    return backend_error(BackendErrorCode::kServiceError,
                         "catalog commit failed: " + put.error().message);
  return {};
}

std::uint64_t Catalog::next_snapshot_id() {
  const std::optional<CatalogPointer> cur = current();
  std::uint64_t candidate = cur ? cur->snapshot_id + 1 : 1;
  // Never reuse an id that left any trace: a stale "current" read must not
  // let a roll overwrite a committed snapshot's immutable objects, and a
  // crashed roll that got as far as its history row keeps its id burned.
  while (read_row(history_item(candidate), /*retry_invisible=*/false))
    ++candidate;
  return candidate;
}

}  // namespace provcloud::cloudprov::manifest
