#include "cloudprov/manifest/reader.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/manifest/catalog.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov::manifest {

ManifestReader::ManifestReader(CloudServices& services,
                               std::shared_ptr<const DomainTopology> topology,
                               ManifestReaderConfig config)
    : services_(&services),
      topology_(std::move(topology)),
      config_(config),
      cache_(std::make_shared<AncestorCache>(config.cache_capacity)) {
  PROVCLOUD_REQUIRE(topology_ != nullptr);
  cache_->bind_metrics(services.env->metrics());
}

const char* const* ManifestReader::sdb_read_ops() {
  static const char* const ops[] = {"GetAttributes", "Query",
                                    "QueryWithAttributes", "Select", nullptr};
  return ops;
}

BackendResult<std::vector<ManifestEntry>> ManifestReader::fetch_block_with_retry(
    const std::string& key) {
  for (std::uint32_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0)
      charge_read_retry(*services_->env);
    auto got = services_->s3.get(kManifestBucket, key);
    if (!got) continue;  // propagation race
    auto decoded = decode_block(*got->data);
    if (!decoded)
      return backend_error(BackendErrorCode::kServiceError,
                           "undecodable manifest block: " + key);
    return std::move(*decoded);
  }
  return backend_error(BackendErrorCode::kConsistencyExhausted,
                       "manifest block never became visible: " + key);
}

BackendResult<void> ManifestReader::bind(const CatalogPointer& pointer,
                                         bool pinned) {
  if (open_ && list_.snapshot_id == pointer.snapshot_id) {
    pinned_ = pinned;
    return {};
  }
  for (std::uint32_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0)
      charge_read_retry(*services_->env);
    auto got = services_->s3.get(kManifestBucket, pointer.list_key);
    if (!got) continue;
    auto decoded = decode_manifest_list(*got->data);
    if (!decoded || decoded->snapshot_id != pointer.snapshot_id)
      return backend_error(BackendErrorCode::kServiceError,
                           "undecodable manifest list: " + pointer.list_key);
    list_ = std::move(*decoded);
    open_ = true;
    pinned_ = pinned;
    cache_->set_snapshot(list_.snapshot_id);
    return {};
  }
  return backend_error(BackendErrorCode::kConsistencyExhausted,
                       "manifest list never became visible: " +
                           pointer.list_key);
}

BackendResult<void> ManifestReader::open_current() {
  Catalog catalog(*services_, config_.max_retries);
  catalog.ensure_domain();
  const std::optional<CatalogPointer> cur = catalog.current();
  if (!cur)
    return backend_error(BackendErrorCode::kNotFound,
                         "no committed snapshot in the catalog");
  return bind(*cur, /*pinned=*/false);
}

BackendResult<void> ManifestReader::open(std::uint64_t snapshot_id) {
  Catalog catalog(*services_, config_.max_retries);
  catalog.ensure_domain();
  const std::optional<CatalogPointer> row = catalog.history(snapshot_id);
  if (!row)
    return backend_error(
        BackendErrorCode::kNotFound,
        "snapshot " + std::to_string(snapshot_id) + " was never committed");
  return bind(*row, /*pinned=*/true);
}

std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>>
ManifestReader::get_provenance_many(const std::vector<pass::ObjectVersion>& ids) {
  using Records = std::vector<pass::ProvenanceRecord>;
  PROVCLOUD_REQUIRE_MSG(open_, "ManifestReader used before open");
  obs::Span span(&services_->env->tracer(), "manifest.read", "manifest");
  span.arg("ids", static_cast<std::uint64_t>(ids.size()));
  std::vector<BackendResult<Records>> results(
      ids.size(), backend_error(BackendErrorCode::kUnknown, "unresolved"));

  // Pass 1: cache hits and min/max pruning. Each miss maps to at most one
  // block (ranges are disjoint); ids outside every range are mutable tail.
  std::map<std::size_t, std::vector<std::size_t>> by_block;  // block -> idxs
  std::vector<std::size_t> tail;
  std::size_t cache_hits = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (const Records* cached = cache_->find(ids[i])) {
      results[i] = *cached;
      ++cache_hits;
      continue;
    }
    const std::optional<std::size_t> block = find_block(list_, ids[i]);
    if (block)
      by_block[*block].push_back(i);
    else
      tail.push_back(i);
  }
  span.arg("cache_hits", static_cast<std::uint64_t>(cache_hits));
  // Ids the min/max ranges prune away before any block fetch: they can
  // only live in the mutable tail.
  span.arg("pruned_to_tail", static_cast<std::uint64_t>(tail.size()));

  // Pass 2: scatter/gather the distinct blocks. Tasks only write their own
  // slot; the ledger charges the critical path of the overlapped GETs.
  span.arg("blocks", static_cast<std::uint64_t>(by_block.size()));
  if (!by_block.empty()) {
    std::vector<std::size_t> block_order;
    block_order.reserve(by_block.size());
    for (const auto& [block, idxs] : by_block) block_order.push_back(block);
    std::vector<BackendResult<std::vector<ManifestEntry>>> fetched(
        block_order.size(),
        backend_error(BackendErrorCode::kUnknown, "unfetched"));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(block_order.size());
    for (std::size_t slot = 0; slot < block_order.size(); ++slot) {
      tasks.push_back(
          [this, slot, key = &list_.blocks[block_order[slot]].key, &fetched] {
            fetched[slot] = fetch_block_with_retry(*key);
          });
    }
    topology_->run_tasks(std::move(tasks));

    // Decode results populate the cache on the caller's thread: the cache
    // stays single-threaded, no locking.
    for (std::size_t slot = 0; slot < block_order.size(); ++slot) {
      const std::vector<std::size_t>& idxs = by_block[block_order[slot]];
      if (!fetched[slot]) {
        for (const std::size_t i : idxs)
          results[i] = util::Unexpected(fetched[slot].error());
        continue;
      }
      std::vector<ManifestEntry>& entries = *fetched[slot];
      for (const ManifestEntry& e : entries) cache_->insert(e.id, e.records);
      for (const std::size_t i : idxs) {
        const auto it = std::lower_bound(
            entries.begin(), entries.end(), ids[i],
            [](const ManifestEntry& e, const pass::ObjectVersion& v) {
              return e.id < v;
            });
        if (it != entries.end() && it->id == ids[i])
          results[i] = it->records;
        else
          tail.push_back(i);  // inside the range but absent: not frozen
      }
    }
    std::sort(tail.begin(), tail.end());
  }

  // Pass 3: mutable tail above the snapshot -- the per-shard SimpleDB read
  // the manifest path replaces everywhere else. Pinned (time-travel)
  // readers must not see it.
  span.arg("tail", static_cast<std::uint64_t>(tail.size()));
  for (const std::size_t i : tail) {
    if (pinned_) {
      results[i] = backend_error(
          BackendErrorCode::kNotFound,
          "not in snapshot " + std::to_string(list_.snapshot_id) + ": " +
              ids[i].to_string());
      continue;
    }
    results[i] = fetch_sdb_provenance(*services_, *topology_, ids[i].object,
                                      ids[i].version, config_.max_retries);
  }
  return results;
}

}  // namespace provcloud::cloudprov::manifest
