// The snapshot catalog: one SimpleDB domain holding pointer rows.
//
// Item "current" is the commit point -- a single PutAttributes (replace
// semantics) atomically swaps which snapshot readers see. Item "snap-<id>"
// is the immutable history row of one snapshot, written *before* the swap
// so an old pointer can always be followed (time travel). A crash anywhere
// before the swap leaves the previous snapshot fully intact: its blocks,
// list and rows are never touched by a later roll.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cloudprov/backend.hpp"

namespace provcloud::cloudprov::manifest {

/// What a catalog row names: the snapshot's manifest list plus its
/// high-watermark (how many frozen entries the snapshot covers -- anything
/// the snapshot's min/max stats prune away is mutable tail).
struct CatalogPointer {
  std::uint64_t snapshot_id = 0;
  std::string list_key;
  std::uint64_t total_entries = 0;
};

class Catalog {
 public:
  explicit Catalog(CloudServices& services, std::uint32_t max_retries = 64);

  /// Create the catalog domain (idempotent).
  void ensure_domain();

  /// The committed pointer, or nullopt when no snapshot was ever rolled.
  /// Retries propagation races a bounded number of times (each retry round
  /// is charged to the ledger as idle wait); a *stale* committed pointer is
  /// returned as-is -- an older snapshot is still correct, the mutable-tail
  /// fallback covers the difference.
  std::optional<CatalogPointer> current();

  /// The history row of `snapshot_id`, but only when that snapshot has been
  /// committed (snapshot_id <= current()'s id): a history row above the
  /// commit point belongs to a crashed, unfinished roll and must not be
  /// served.
  std::optional<CatalogPointer> history(std::uint64_t snapshot_id);

  /// Write the immutable history row of a finished-but-uncommitted
  /// snapshot (step before the swap).
  BackendResult<void> publish_history(const CatalogPointer& pointer);

  /// The commit point: atomically repoint "current" at `pointer`.
  BackendResult<void> commit(const CatalogPointer& pointer);

  /// First snapshot id with no trace in the catalog, starting from
  /// current + 1. Ids of crashed rolls that reached their history row stay
  /// burned: a fresh roll must never overwrite objects another (possibly
  /// committed, possibly half-written) snapshot may own.
  std::uint64_t next_snapshot_id();

 private:
  std::optional<CatalogPointer> read_row(const std::string& item,
                                         bool retry_invisible);

  CloudServices* services_;
  std::uint32_t max_retries_;
};

}  // namespace provcloud::cloudprov::manifest
