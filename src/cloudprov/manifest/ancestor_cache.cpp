#include "cloudprov/manifest/ancestor_cache.hpp"

#include "util/require.hpp"

namespace provcloud::cloudprov::manifest {

AncestorCache::AncestorCache(std::size_t capacity) : capacity_(capacity) {
  PROVCLOUD_REQUIRE(capacity_ > 0);
}

void AncestorCache::set_snapshot(std::uint64_t snapshot_id) {
  if (snapshot_id == snapshot_id_) return;
  stats_.invalidations += entries_.size();
  entries_.clear();
  lru_.clear();
  snapshot_id_ = snapshot_id;
}

const std::vector<pass::ProvenanceRecord>* AncestorCache::find(
    const pass::ObjectVersion& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_it);
  lru_.push_front(id);
  it->second.lru_it = lru_.begin();
  return &it->second.records;
}

void AncestorCache::insert(const pass::ObjectVersion& id,
                           std::vector<pass::ProvenanceRecord> records) {
  ++stats_.insertions;
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.records = std::move(records);
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
    return;
  }
  lru_.push_front(id);
  entries_.emplace(id, Entry{std::move(records), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace provcloud::cloudprov::manifest
