#include "cloudprov/manifest/ancestor_cache.hpp"

#include "util/require.hpp"

namespace provcloud::cloudprov::manifest {

AncestorCache::AncestorCache(std::size_t capacity) : capacity_(capacity) {
  PROVCLOUD_REQUIRE(capacity_ > 0);
}

void AncestorCache::bind_metrics(obs::MetricsRegistry& registry) {
  hits_counter_ = &registry.counter("ancestor_cache.hits");
  misses_counter_ = &registry.counter("ancestor_cache.misses");
  insertions_counter_ = &registry.counter("ancestor_cache.insertions");
  invalidations_counter_ = &registry.counter("ancestor_cache.invalidations");
}

void AncestorCache::set_snapshot(std::uint64_t snapshot_id) {
  if (snapshot_id == snapshot_id_) return;
  stats_.invalidations += entries_.size();
  if (invalidations_counter_ != nullptr)
    invalidations_counter_->add(entries_.size());
  entries_.clear();
  lru_.clear();
  snapshot_id_ = snapshot_id;
}

const std::vector<pass::ProvenanceRecord>* AncestorCache::find(
    const pass::ObjectVersion& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (misses_counter_ != nullptr) misses_counter_->add(1);
    return nullptr;
  }
  ++stats_.hits;
  if (hits_counter_ != nullptr) hits_counter_->add(1);
  lru_.erase(it->second.lru_it);
  lru_.push_front(id);
  it->second.lru_it = lru_.begin();
  return &it->second.records;
}

void AncestorCache::insert(const pass::ObjectVersion& id,
                           std::vector<pass::ProvenanceRecord> records) {
  ++stats_.insertions;
  if (insertions_counter_ != nullptr) insertions_counter_->add(1);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.records = std::move(records);
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
    return;
  }
  lru_.push_front(id);
  entries_.emplace(id, Entry{std::move(records), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace provcloud::cloudprov::manifest
