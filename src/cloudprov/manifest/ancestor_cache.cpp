#include "cloudprov/manifest/ancestor_cache.hpp"

#include "util/require.hpp"

namespace provcloud::cloudprov::manifest {

AncestorCache::AncestorCache(std::size_t capacity) : capacity_(capacity) {
  PROVCLOUD_REQUIRE(capacity_ > 0);
}

void AncestorCache::bind_metrics(obs::MetricsRegistry& registry) {
  hits_counter_ = &registry.counter("ancestor_cache.hits");
  misses_counter_ = &registry.counter("ancestor_cache.misses");
  insertions_counter_ = &registry.counter("ancestor_cache.insertions");
  invalidations_counter_ = &registry.counter("ancestor_cache.invalidations");
}

void AncestorCache::set_snapshot(std::uint64_t snapshot_id) {
  if (snapshot_id == snapshot_id_) return;
  // Fragments survive snapshot rolls: records of a version never change
  // once durable, so only entries decoded from a snapshot NEWER than the
  // one being bound (a time-travel rebind) could name versions it has never
  // seen -- drop exactly those.
  std::uint64_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.origin > snapshot_id) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  if (invalidations_counter_ != nullptr && dropped > 0)
    invalidations_counter_->add(dropped);
  snapshot_id_ = snapshot_id;
}

const std::vector<pass::ProvenanceRecord>* AncestorCache::find(
    const pass::ObjectVersion& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (misses_counter_ != nullptr) misses_counter_->add(1);
    return nullptr;
  }
  ++stats_.hits;
  if (hits_counter_ != nullptr) hits_counter_->add(1);
  lru_.erase(it->second.lru_it);
  lru_.push_front(id);
  it->second.lru_it = lru_.begin();
  return &it->second.records;
}

void AncestorCache::insert(const pass::ObjectVersion& id,
                           std::vector<pass::ProvenanceRecord> records) {
  ++stats_.insertions;
  if (insertions_counter_ != nullptr) insertions_counter_->add(1);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.records = std::move(records);
    it->second.origin = snapshot_id_;
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
    return;
  }
  lru_.push_front(id);
  entries_.emplace(id, Entry{std::move(records), lru_.begin(), snapshot_id_});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace provcloud::cloudprov::manifest
