#include "cloudprov/manifest/writer.hpp"

#include <algorithm>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/manifest/catalog.hpp"
#include "cloudprov/serialize.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov::manifest {

ManifestWriter::ManifestWriter(CloudServices& services,
                               std::shared_ptr<const DomainTopology> topology,
                               ManifestWriterConfig config)
    : services_(&services), topology_(std::move(topology)), config_(config) {
  PROVCLOUD_REQUIRE(topology_ != nullptr);
  PROVCLOUD_REQUIRE(config_.block_entries > 0);
}

BackendResult<ManifestList> ManifestWriter::roll() {
  aws::CloudEnv& env = *services_->env;
  Catalog catalog(*services_, config_.max_retries);
  catalog.ensure_domain();
  env.failures().crash_point("manifest.roll.begin");

  // Enumerate the frozen item names, one billed query sweep per shard
  // domain; the per-domain sweeps overlap on the topology's executor.
  const std::vector<std::vector<std::string>> per_domain =
      topology_->scatter<std::vector<std::string>>(
          [this](std::size_t, const std::string& domain) {
            std::vector<std::string> names;
            std::string token;
            for (;;) {
              auto page = services_->sdb.query(domain, "",
                                               aws::kSdbMaxQueryResults, token);
              if (!page) break;
              names.insert(names.end(), page->item_names.begin(),
                           page->item_names.end());
              if (!page->next_token) break;
              token = *page->next_token;
            }
            return names;
          });

  // Fetch every item's resolved records -- the exact bytes the SimpleDB
  // read path would return -- and sort into the snapshot order.
  std::vector<ManifestEntry> entries;
  for (const std::vector<std::string>& names : per_domain) {
    for (const std::string& item : names) {
      pass::ObjectVersion id;
      if (!parse_item_name(item, id.object, id.version)) continue;
      auto records = fetch_sdb_provenance(*services_, *topology_, id.object,
                                          id.version, config_.max_retries);
      if (!records)
        return backend_error(
            BackendErrorCode::kServiceError,
            "manifest roll could not fetch " + item + ": " +
                records.error().message);
      entries.push_back(ManifestEntry{std::move(id), std::move(*records)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.id < b.id;
            });

  const std::uint64_t snapshot_id = catalog.next_snapshot_id();

  // Cut sorted entries into blocks and PUT each. Sequential on purpose: a
  // roll is background work, and the crash sweep wants a deterministic
  // point between any two block PUTs.
  ManifestList list;
  list.snapshot_id = snapshot_id;
  list.total_entries = entries.size();
  for (std::size_t start = 0; start < entries.size();
       start += config_.block_entries) {
    const std::size_t end =
        std::min(start + config_.block_entries, entries.size());
    const std::vector<ManifestEntry> block(
        entries.begin() + static_cast<std::ptrdiff_t>(start),
        entries.begin() + static_cast<std::ptrdiff_t>(end));
    const std::string encoded = encode_block(block);
    BlockStats stats;
    stats.key = manifest_block_key(snapshot_id, list.blocks.size());
    stats.min = block.front().id;
    stats.max = block.back().id;
    stats.entries = block.size();
    stats.bytes = encoded.size();
    auto put = services_->s3.put(kManifestBucket, stats.key, encoded);
    if (!put)
      return backend_error(BackendErrorCode::kServiceError,
                           "manifest block PUT failed: " + put.error().message);
    list.blocks.push_back(std::move(stats));
    env.failures().crash_point("manifest.roll.after_block_put");
  }

  CatalogPointer pointer{snapshot_id, manifest_list_key(snapshot_id),
                         list.total_entries};
  auto put_list = services_->s3.put(kManifestBucket, pointer.list_key,
                                    encode_manifest_list(list));
  if (!put_list)
    return backend_error(BackendErrorCode::kServiceError,
                         "manifest list PUT failed: " + put_list.error().message);
  env.failures().crash_point("manifest.roll.after_list_put");

  auto history = catalog.publish_history(pointer);
  if (!history) return util::Unexpected(history.error());
  env.failures().crash_point("manifest.roll.after_history");

  auto committed = catalog.commit(pointer);
  if (!committed) return util::Unexpected(committed.error());
  env.failures().crash_point("manifest.roll.after_commit");

  last_snapshot_id_ = snapshot_id;
  return list;
}

}  // namespace provcloud::cloudprov::manifest
