// ManifestWriter: roll the frozen provenance store into a snapshot.
//
// A roll enumerates every provenance item across the shard domains, fetches
// each item's fully-resolved records through the same fetch_sdb_provenance
// path queries use (so manifest contents are bit-identical to SimpleDB
// reads), sorts the entries, cuts them into immutable blocks on S3, writes
// the manifest list, publishes the catalog history row and finally swaps
// the catalog "current" pointer -- the commit point. PASS versioning makes
// every stored (object, version) immutable, so anything the enumeration saw
// is frozen by construction; items stored after the roll are the mutable
// tail the reader serves from SimpleDB.
//
// Crash protocol (the property checker sweeps every point):
//   manifest.roll.begin            -- before any write
//   manifest.roll.after_block_put  -- after each block PUT
//   manifest.roll.after_list_put   -- manifest list durable, not cataloged
//   manifest.roll.after_history    -- history row durable, not committed
//   manifest.roll.after_commit     -- pointer swapped
// A crash at any point before after_commit leaves the previous snapshot
// serving: its objects are immutable and its pointer row untouched.
#pragma once

#include <cstdint>
#include <memory>

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"
#include "cloudprov/manifest/format.hpp"

namespace provcloud::cloudprov::manifest {

struct ManifestWriterConfig {
  /// Entries per manifest block. Smaller blocks prune tighter; larger
  /// blocks amortize GETs harder (the kivaloo lbs trade).
  std::size_t block_entries = 64;
  /// Visibility-retry budget when fetching item records at roll time.
  std::uint32_t max_retries = 64;
};

class ManifestWriter {
 public:
  ManifestWriter(CloudServices& services,
                 std::shared_ptr<const DomainTopology> topology,
                 ManifestWriterConfig config = {});

  /// Roll a new snapshot of everything currently visible. Returns the
  /// committed manifest list. May throw sim::CrashError at an armed crash
  /// point -- the catalog then still names the previous snapshot.
  BackendResult<ManifestList> roll();

  /// Id of the last snapshot this writer committed (0 = none yet).
  std::uint64_t last_snapshot_id() const { return last_snapshot_id_; }

 private:
  CloudServices* services_;
  std::shared_ptr<const DomainTopology> topology_;
  ManifestWriterConfig config_;
  std::uint64_t last_snapshot_id_ = 0;
};

}  // namespace provcloud::cloudprov::manifest
