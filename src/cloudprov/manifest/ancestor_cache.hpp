// AncestorCache: a bounded LRU of transitive-closure fragments.
//
// The manifest read path decodes whole blocks; this cache keeps the decoded
// (object, version) -> records fragments resident (the pass/local_cache
// idiom, lifted to the read side), so an ancestry walk that revisits a hot
// region -- or a later walk over an overlapping closure -- issues no cloud
// reads at all for it. Entries are tagged with the snapshot they were
// decoded from. A fragment is one (object, version)'s records, written once
// at close time and merely re-cut into different blocks per snapshot, so
// moving to a NEWER snapshot keeps every entry valid; only binding an OLDER
// snapshot (time travel) drops entries decoded from beyond it, which could
// name versions that snapshot has never seen.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "pass/pnode.hpp"
#include "pass/record.hpp"

namespace provcloud::cloudprov::manifest {

struct AncestorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t invalidations = 0;  // entries dropped by snapshot changes
};

class AncestorCache {
 public:
  explicit AncestorCache(std::size_t capacity);

  /// Bind the cache to a snapshot. Entries decoded from a snapshot at or
  /// below the new binding stay resident (fragments are immutable across
  /// snapshots); only entries from a newer snapshot than the one being
  /// bound are dropped (counted in stats().invalidations).
  void set_snapshot(std::uint64_t snapshot_id);
  std::uint64_t snapshot_id() const { return snapshot_id_; }

  /// Records of `id` if resident (touches LRU), else nullptr.
  const std::vector<pass::ProvenanceRecord>* find(const pass::ObjectVersion& id);

  /// Insert (or refresh) a fragment, evicting LRU entries over capacity.
  void insert(const pass::ObjectVersion& id,
              std::vector<pass::ProvenanceRecord> records);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const AncestorCacheStats& stats() const { return stats_; }

  /// Mirror the stats onto registry counters ancestor_cache.{hits,misses,
  /// insertions,invalidations}. The local stats() stay authoritative for
  /// this cache; the counters aggregate across every cache in the env.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct Entry {
    std::vector<pass::ProvenanceRecord> records;
    std::list<pass::ObjectVersion>::iterator lru_it;
    /// Snapshot the fragment was decoded from (cross-snapshot validity).
    std::uint64_t origin = 0;
  };

  std::size_t capacity_;
  std::uint64_t snapshot_id_ = 0;
  std::map<pass::ObjectVersion, Entry> entries_;
  std::list<pass::ObjectVersion> lru_;  // front = most recent
  AncestorCacheStats stats_;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* insertions_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
};

}  // namespace provcloud::cloudprov::manifest
