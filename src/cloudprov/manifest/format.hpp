// Manifest snapshot wire formats (the iceberg-style read-path layout).
//
// A *snapshot* freezes everything the provenance store held at roll time
// into immutable, sorted, columnar-ish objects in a dedicated S3 bucket:
//
//   catalog item (SimpleDB)  ->  manifest list (S3)  ->  manifest blocks (S3)
//
// Each manifest *block* holds a contiguous run of (object, version) entries
// in ascending order, every entry carrying the version's fully-resolved
// provenance records (spill pointers are chased at roll time, so a block
// read never needs a follow-up request). The manifest *list* names every
// block together with its min/max (object, version) pruning stats and
// sizes, so a reader locates the one block that can contain an item with no
// I/O beyond the list itself.
//
// Values may contain any byte (ENV records embed newlines), so both
// encodings are length-prefixed rather than line-oriented.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pass/pnode.hpp"
#include "pass/record.hpp"

namespace provcloud::cloudprov::manifest {

/// Bucket holding manifest blocks and manifest lists. Separate from the
/// data bucket: snapshot objects are derived state, invisible to the
/// atomicity/orphan invariants over kDataBucket.
inline constexpr const char* kManifestBucket = "pass-manifests";

/// SimpleDB domain holding the catalog pointer rows.
inline constexpr const char* kCatalogDomain = "prov-catalog";

/// S3 keys of a snapshot's objects.
std::string manifest_list_key(std::uint64_t snapshot_id);
std::string manifest_block_key(std::uint64_t snapshot_id, std::size_t block);

/// One frozen (object, version) with its resolved provenance records --
/// exactly what fetch_sdb_provenance would return for the item, so a
/// manifest read is bit-identical to the SimpleDB read it replaces.
struct ManifestEntry {
  pass::ObjectVersion id;
  std::vector<pass::ProvenanceRecord> records;
};

/// Pruning stats of one block, carried by the manifest list.
struct BlockStats {
  std::string key;        // S3 key of the block object
  pass::ObjectVersion min;  // smallest entry id in the block
  pass::ObjectVersion max;  // largest entry id in the block
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;  // encoded block size (GET planning)
};

/// The decoded manifest list: the snapshot's full block index.
struct ManifestList {
  std::uint64_t snapshot_id = 0;
  std::uint64_t total_entries = 0;
  std::vector<BlockStats> blocks;  // ascending, disjoint min/max ranges
};

/// Block encoding: "PMB1" header, then length-prefixed entries.
std::string encode_block(const std::vector<ManifestEntry>& entries);
/// Returns nullopt on any framing error (truncated or foreign object).
std::optional<std::vector<ManifestEntry>> decode_block(const std::string& raw);

/// Manifest-list encoding: "PML1" header, then one record per block.
std::string encode_manifest_list(const ManifestList& list);
std::optional<ManifestList> decode_manifest_list(const std::string& raw);

/// Block index of the block whose [min, max] range can contain `id`, or
/// nullopt when every block is pruned away (the id is outside all ranges:
/// either never stored or in the mutable tail above this snapshot).
std::optional<std::size_t> find_block(const ManifestList& list,
                                      const pass::ObjectVersion& id);

}  // namespace provcloud::cloudprov::manifest
