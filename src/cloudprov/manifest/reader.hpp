// ManifestReader: serve ancestry reads from snapshot manifests.
//
// The batched read path behind the manifest query engine:
//
//   1. AncestorCache lookup (no cloud traffic on a hit);
//   2. min/max pruning over the manifest list locates, per miss, the one
//      block that can hold the item;
//   3. the distinct blocks are fetched with scatter/gather through
//      DomainTopology::run_tasks, so the LatencyLedger charges the critical
//      path of the overlapped GETs, then decoded and cached;
//   4. items the snapshot prunes away (stored after the roll) fall back to
//      the per-shard SimpleDB reads -- the mutable tail.
//
// Time travel: open(snapshot_id) pins the reader to a committed historical
// snapshot; tail fallback is then disabled (the tail of an old snapshot is
// "the future" and must not leak in).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"
#include "cloudprov/manifest/ancestor_cache.hpp"
#include "cloudprov/manifest/catalog.hpp"
#include "cloudprov/manifest/format.hpp"

namespace provcloud::cloudprov::manifest {

struct ManifestReaderConfig {
  /// AncestorCache capacity (transitive-closure fragments).
  std::size_t cache_capacity = 4096;
  /// Retry budget for propagation races (block GETs, tail reads).
  std::uint32_t max_retries = 64;
};

class ManifestReader {
 public:
  ManifestReader(CloudServices& services,
                 std::shared_ptr<const DomainTopology> topology,
                 ManifestReaderConfig config = {});

  /// Bind to the committed current snapshot. Cheap when already bound to
  /// it (one catalog read, no list GET). Errors with kNotFound when no
  /// snapshot was ever committed. Binding to a *different* snapshot than
  /// before invalidates the AncestorCache.
  BackendResult<void> open_current();

  /// Time travel: bind to a committed historical snapshot. kNotFound when
  /// the id was never committed (includes ids of crashed rolls).
  BackendResult<void> open(std::uint64_t snapshot_id);

  bool is_open() const { return open_; }
  std::uint64_t snapshot_id() const { return list_.snapshot_id; }
  const ManifestList& list() const { return list_; }
  bool time_travel() const { return pinned_; }

  /// The cache, shareable with the hints prefetcher.
  const std::shared_ptr<AncestorCache>& cache() const { return cache_; }

  /// The shard layout the reader scatters over (same one the store used).
  const std::shared_ptr<const DomainTopology>& topology() const {
    return topology_;
  }

  /// Batched provenance fetch, results in input order. Snapshot-resident
  /// ids come from cache or scatter/gathered block GETs; ids the snapshot
  /// prunes away use the SimpleDB tail fallback -- unless the reader is
  /// time-travel pinned, in which case they error kNotFound.
  std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>>
  get_provenance_many(const std::vector<pass::ObjectVersion>& ids);

  /// SimpleDB read round trips a deep walk is charged for, for diagnostics:
  /// the meter keys the manifest sweep in bench_table3_query diffs.
  static const char* const* sdb_read_ops();

 private:
  BackendResult<void> bind(const CatalogPointer& pointer, bool pinned);
  BackendResult<std::vector<ManifestEntry>> fetch_block_with_retry(
      const std::string& key);

  CloudServices* services_;
  std::shared_ptr<const DomainTopology> topology_;
  ManifestReaderConfig config_;
  std::shared_ptr<AncestorCache> cache_;
  ManifestList list_;
  bool open_ = false;
  bool pinned_ = false;
};

}  // namespace provcloud::cloudprov::manifest
