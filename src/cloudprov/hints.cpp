#include "cloudprov/hints.hpp"

#include <algorithm>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/manifest/ancestor_cache.hpp"
#include "cloudprov/serialize.hpp"
#include "util/require.hpp"
#include "util/string_utils.hpp"

namespace provcloud::cloudprov {

ProvenanceCache::ProvenanceCache(CloudServices& services, PrefetchConfig config)
    : ProvenanceCache(services, config,
                      DomainTopology::make(TopologyConfig{
                          .ledger = &services.env->latency_ledger()})) {}

ProvenanceCache::ProvenanceCache(CloudServices& services, PrefetchConfig config,
                                 std::shared_ptr<const DomainTopology> topology)
    : services_(&services), config_(config), topology_(std::move(topology)) {
  PROVCLOUD_REQUIRE(config_.cache_capacity > 0);
  PROVCLOUD_REQUIRE(topology_ != nullptr);
  obs::MetricsRegistry& metrics = services.env->metrics();
  reads_counter_ = &metrics.counter("prefetch.reads");
  hits_counter_ = &metrics.counter("prefetch.hits");
  misses_counter_ = &metrics.counter("prefetch.misses");
  prefetches_counter_ = &metrics.counter("prefetch.issued");
  prefetch_hits_counter_ = &metrics.counter("prefetch.hits_speculative");
  ancestor_cache_hits_counter_ =
      &metrics.counter("prefetch.ancestor_cache_hits");
}

std::vector<aws::SimpleDbService::ItemWithAttributes>
ProvenanceCache::scatter_prefetch_query(
    const std::string& expression,
    const std::vector<std::string>& attribute_filter, std::size_t limit) {
  using Page = std::vector<aws::SimpleDbService::ItemWithAttributes>;
  const std::vector<Page> parts = topology_->scatter<Page>(
      [this, &expression, &attribute_filter, limit](std::size_t,
                                                    const std::string& domain) {
        Page part;
        auto q = services_->sdb.query_with_attributes(domain, expression,
                                                      attribute_filter, limit);
        // Distinguish internal traffic for the cost analysis.
        services_->env->meter().record("sdb", "Query.prefetch", 0, 0);
        if (q) part = std::move(q->items);
        return part;
      });
  Page out;
  for (const Page& part : parts)
    out.insert(out.end(), part.begin(), part.end());
  return out;
}

void ProvenanceCache::touch(const std::string& object,
                            std::map<std::string, Entry>::iterator it) {
  lru_.erase(it->second.lru_it);
  lru_.push_front(object);
  it->second.lru_it = lru_.begin();
}

void ProvenanceCache::insert(const std::string& object, util::SharedBytes data,
                             bool speculative) {
  auto it = entries_.find(object);
  if (it != entries_.end()) {
    it->second.data = std::move(data);
    touch(object, it);
    return;
  }
  lru_.push_front(object);
  Entry entry;
  entry.data = std::move(data);
  entry.lru_it = lru_.begin();
  entry.speculative = speculative;
  entries_.emplace(object, std::move(entry));
  evict_if_needed();
}

void ProvenanceCache::evict_if_needed() {
  while (entries_.size() > config_.cache_capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
}

std::vector<std::string> ProvenanceCache::hint_candidates(
    const std::string& object) {
  std::vector<std::string> out;
  // 1. The object's provenance: which process produced it? The data
  //    object's nonce names the item; its INPUT xrefs name producers.
  auto head = services_->s3.head(kDataBucket, object);
  if (!head) return out;
  auto version_it = head->metadata.find(kVersionMetaKey);
  if (version_it == head->metadata.end()) return out;
  const std::string item = object + ":" + version_it->second;

  std::vector<std::string> producers;
  bool from_cache = false;
  if (ancestor_cache_ != nullptr) {
    std::uint32_t version = 0;
    try {
      version = static_cast<std::uint32_t>(std::stoul(version_it->second));
    } catch (...) {
    }
    // An ancestry walk may already hold this fragment: mine it instead of
    // re-reading the item from SimpleDB (cached records are fully resolved,
    // so no spill-marker filtering is needed).
    if (const auto* cached =
            ancestor_cache_->find(pass::ObjectVersion{object, version})) {
      for (const pass::ProvenanceRecord& r : *cached)
        if (r.is_xref() && r.attribute == pass::attr::kInput)
          producers.push_back(r.value_string());
      from_cache = true;
      ++stats_.ancestor_cache_hits;
      ancestor_cache_hits_counter_->add(1);
    }
  }
  if (!from_cache) {
    auto attrs = services_->sdb.get_attributes(
        topology_->domain_for_object(object), item);
    if (!attrs || attrs->empty()) return out;
    auto inputs = attrs->find(pass::attr::kInput);
    if (inputs != attrs->end())
      for (const std::string& v : inputs->second)
        if (v.rfind(kSpillMarker, 0) != 0) producers.push_back(v);
  }

  // 2. Siblings: other items whose INPUT includes the same producer
  //    version -- the rest of the run's outputs.
  std::size_t siblings = 0;
  for (const std::string& producer : producers) {
    if (siblings >= config_.sibling_limit) break;
    // A consumer of `producer` can live in any shard: scatter the query.
    const auto siblings_found = scatter_prefetch_query(
        "['INPUT' = '" + producer + "']", {"x-kind"}, config_.sibling_limit);
    for (const auto& sibling : siblings_found) {
      std::string sib_object;
      std::uint32_t sib_version = 0;
      if (!parse_item_name(sibling.name, sib_object, sib_version)) continue;
      if (sib_object == object) continue;
      auto kind = sibling.attributes.find("x-kind");
      if (kind == sibling.attributes.end() || kind->second.empty() ||
          *kind->second.begin() != "file")
        continue;
      out.push_back(sib_object);
      if (++siblings >= config_.sibling_limit) break;
    }
  }

  // 3. Descendants and co-inputs: files derived from this object (the
  //    researcher's next click is often downstream), and the *other* inputs
  //    of the consuming processes (the rest of an aggregation's fan-in --
  //    e.g. the sibling hits files feeding the same summary).
  const auto children =
      scatter_prefetch_query("['INPUT' = '" + item + "']", {},
                             config_.descendant_limit + 4);
  {
    std::size_t descendants = 0;
    for (const auto& child : children) {
      std::string child_object;
      std::uint32_t child_version = 0;
      if (!parse_item_name(child.name, child_object, child_version)) continue;

      // Co-inputs: whatever else this consumer read.
      auto co_inputs = child.attributes.find(pass::attr::kInput);
      if (co_inputs != child.attributes.end()) {
        std::size_t co = 0;
        for (const std::string& v : co_inputs->second) {
          if (co >= config_.sibling_limit) break;
          if (v.rfind(kSpillMarker, 0) == 0) continue;
          std::string co_object;
          std::uint32_t co_version = 0;
          if (!parse_item_name(v, co_object, co_version)) continue;
          if (co_object == object ||
              util::starts_with(co_object, "proc/") ||
              util::starts_with(co_object, "pipe/"))
            continue;
          out.push_back(co_object);
          ++co;
        }
      }

      // Descendant files: chase one hop to the consumer's outputs.
      if (descendants >= config_.descendant_limit) continue;
      const auto grandchildren = scatter_prefetch_query(
          "['INPUT' = '" + child.name + "']", {"x-kind"}, 4);
      for (const auto& g : grandchildren) {
        std::string g_object;
        std::uint32_t g_version = 0;
        if (!parse_item_name(g.name, g_object, g_version)) continue;
        auto kind = g.attributes.find("x-kind");
        if (kind == g.attributes.end() || kind->second.empty() ||
            *kind->second.begin() != "file")
          continue;
        if (g_object == object) continue;
        out.push_back(g_object);
        if (++descendants >= config_.descendant_limit) break;
      }
    }
  }
  return out;
}

util::SharedBytes ProvenanceCache::read(const std::string& object) {
  ++stats_.reads;
  reads_counter_->add(1);
  auto it = entries_.find(object);
  if (it != entries_.end()) {
    ++stats_.hits;
    hits_counter_->add(1);
    if (it->second.speculative) {
      ++stats_.prefetch_hits;
      prefetch_hits_counter_->add(1);
      it->second.speculative = false;
    }
    touch(object, it);
    return it->second.data;
  }

  ++stats_.misses;
  misses_counter_->add(1);
  auto got = services_->s3.get(kDataBucket, object);
  if (!got) return nullptr;
  insert(object, got->data, /*speculative=*/false);

  if (config_.use_provenance_hints) {
    for (const std::string& candidate : hint_candidates(object)) {
      if (entries_.count(candidate) > 0) continue;
      auto warmed = services_->s3.get(kDataBucket, candidate);
      services_->env->meter().record("s3", "GET.prefetch", 0, 0);
      if (!warmed) continue;
      ++stats_.prefetches;
      prefetches_counter_->add(1);
      insert(candidate, warmed->data, /*speculative=*/true);
    }
  }
  return got->data;
}

}  // namespace provcloud::cloudprov
