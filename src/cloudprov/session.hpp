// Session / Ticket: the asynchronous close path.
//
// The paper's close-time protocol charges one full cloud round-trip chain
// per file close because ProvenanceBackend::store blocks until the close is
// durable. A Session decouples the two halves of that contract, after
// kivaloo's pipelined request/response protocol: submit(unit) enqueues a
// close and returns a Ticket immediately; sync() is the durability barrier
// that drains every outstanding ticket. Between barriers the backend is
// free to coalesce the submitted closes into one group commit:
//
//   Arch 1  submit == store (its single-PUT atomicity depends on it);
//   Arch 2  one BatchPutAttributes chain per group of closes instead of
//           per close, routed per shard through DomainTopology;
//   Arch 3  WAL log records of the whole group ride batched SQS sends and
//           one commit-daemon poke per group.
//
// Error handling: each Ticket carries the eventual BackendResult of its
// close, so a per-close failure inside a batched flush is not lost. An
// injected client crash (sim::CrashError) still propagates out of
// submit()/sync() -- the client is dead -- with every not-yet-durable
// ticket marked BackendErrorCode::kCrashed.
//
// Elapsed time: service calls exclusive to one close (spill PUTs, data
// PUTs, WAL temp PUTs) are charged to that ticket's own ledger timeline;
// calls shared by the group (the batched provenance writes) are charged to
// the session's (caller's) timeline. When a group retires, the ticket
// timelines merge into the caller's by critical path: in-flight closes
// overlap, so the client waits for the slowest one, not the sum. With
// group_size == 1 the merge degenerates to the sum and the session is
// bit-for-bit the old store() accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cloudprov/backend.hpp"

namespace provcloud::cloudprov {

/// Shared state of one submitted close. Owned by the session while the
/// close is in flight; the Ticket keeps it readable afterwards.
struct TicketState {
  std::uint64_t id = 0;
  pass::FlushUnit unit;
  /// Service time exclusive to this close (spill / data / temp PUTs),
  /// merged into the client's timeline by critical path at group retire.
  sim::LatencyLedger::Timeline timeline;
  /// True once the backend finished processing this close (successfully
  /// or not); `result` is meaningful only then.
  bool done = false;
  BackendResult<void> result;
};

/// Handle to one submitted close. Cheap to copy; outlives the session.
class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::shared_ptr<const TicketState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const { return state_ == nullptr ? 0 : state_->id; }

  /// The backend finished processing this close (after the group it rode
  /// in flushed -- at the latest at the next sync()).
  bool done() const { return state_ != nullptr && state_->done; }

  /// done() and the close is durable.
  bool ok() const { return done() && state_->result.has_value(); }

  /// The per-close failure; call only when done() && !ok().
  const BackendError& error() const { return state_->result.error(); }

 private:
  std::shared_ptr<const TicketState> state_;
};

/// One client's asynchronous close stream. Single-threaded, like the
/// store() path it replaces; one session per client.
class Session {
 public:
  /// Built by ProvenanceBackend::open_session.
  Session(ProvenanceBackend& backend, SessionConfig config,
          sim::LatencyLedger* ledger);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Enqueue one close. Returns immediately unless the enqueue fills the
  /// group (or the backend has no group commit), in which case the group
  /// flushes before returning. May throw sim::CrashError from a flush.
  Ticket submit(const pass::FlushUnit& unit);

  /// Durability barrier: flush the partial group and report the first
  /// per-close failure since the last sync (success if every ticket since
  /// then is durable). May throw sim::CrashError from the flush.
  BackendResult<void> sync();

  /// Closes submitted but not yet handed to the backend.
  std::size_t pending() const { return group_.size(); }
  /// Closes submitted over the session's lifetime.
  std::uint64_t submitted() const { return next_ticket_id_ - 1; }

  const SessionConfig& config() const { return config_; }

 private:
  void flush();
  void record_errors(const std::vector<TicketState*>& group);

  ProvenanceBackend* backend_;
  SessionConfig config_;
  sim::LatencyLedger* ledger_;
  std::vector<std::shared_ptr<TicketState>> group_;
  std::optional<BackendError> first_error_;
  std::uint64_t next_ticket_id_ = 1;
};

}  // namespace provcloud::cloudprov
