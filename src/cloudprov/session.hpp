// Session / Ticket / CommitDaemon: the concurrent asynchronous close path.
//
// The paper's close-time protocol charges one full cloud round-trip chain
// per file close because ProvenanceBackend::store blocks until the close is
// durable. A Session decouples the two halves of that contract, after
// kivaloo's pipelined request/response protocol: submit(unit) enqueues a
// close and returns a Ticket immediately; sync() is the durability barrier
// that drains every outstanding ticket.
//
// PR 6 turns the session layer into a server core, after kivaloo's kvlds
// dispatcher: a backend accepts MANY concurrent sessions, whose submits
// feed one per-backend MPSC queue drained by a single commit daemon. The
// daemon flushes the pending group into the backend's group-commit path
// when the group is full OR when the oldest queued submit's flush deadline
// expires (SessionConfig::flush_deadline, delivered by a SimClock event);
// submits arriving while a flush is in flight never block -- they join the
// next group, kivaloo-style. Groups may therefore span sessions: the
// causal-wave logic in Arch 2's commit path and the txid ordering in Arch
// 3's already handle cross-close (now cross-client) dependencies and
// duplicate (object, version) submits.
//
//   Arch 1  submit == store (its single-PUT atomicity depends on it);
//   Arch 2  one BatchPutAttributes chain per group of closes instead of
//           per close, routed per shard through DomainTopology;
//   Arch 3  WAL log records of the whole group ride batched SQS sends and
//           one commit-daemon poke per group.
//
// Read-your-writes: Session::read(object) consults the session's in-flight
// submits before the backend read path. A pending (unflushed) submit is
// served straight from its queued FlushUnit -- zero cloud calls; a durable
// own-write puts a floor under the backend's answer (a stale replica can
// never roll the session's own view backwards).
//
// Error handling: each Ticket carries the eventual BackendResult of its
// close, so a per-close failure inside a batched flush is not lost. An
// injected client crash (sim::CrashError) still propagates out of the call
// that ran the flush -- submit(), sync(), or the clock advance that fired a
// deadline -- with every not-yet-durable ticket of the group marked
// BackendErrorCode::kCrashed.
//
// Elapsed time: service calls exclusive to one close (spill PUTs, data
// PUTs, WAL temp PUTs) are charged to that ticket's own ledger timeline;
// calls shared by the group (the batched provenance writes) are charged to
// a per-group timeline the daemon binds around commit_group and then
// absorbs into every rider's timeline. Time a submit spends queued waiting
// for a deadline is charged to its ticket as "idle" -- deadline batching is
// not free, and the ledger shows the trade. When a group retires, each
// owning session merges its own tickets of that group into its caller's
// timeline by critical path: in-flight closes overlap, so the client waits
// for the slowest one, not the sum. With group size 1 and no queue wait the
// merge degenerates to the sum and the session is bit-for-bit the old
// store() accounting.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cloudprov/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace provcloud::cloudprov {

/// Why a flush group went out: the group filled, a queued submit's deadline
/// expired, or a durability barrier drained the queue. Counted per trigger
/// (metrics daemon.flush.*) and stamped onto flush spans.
enum class FlushTrigger { kGroupFull, kDeadline, kSync };

const char* to_string(FlushTrigger trigger);

/// Shared state of one submitted close. Written by the flushing thread
/// (whichever session or clock event claims the flush), published to the
/// owning session and any Ticket holder via the `retired` release store.
struct TicketState {
  std::uint64_t id = 0;  // session-local submit counter
  pass::FlushUnit unit;
  /// Service time exclusive to this close (spill / data / temp PUTs) plus
  /// its queued "idle" wait, merged into the owning client's timeline by
  /// critical path at group retire.
  sim::LatencyLedger::Timeline timeline;
  /// Backend-facing completion flag: commit_group sets it as the close
  /// becomes durable (flusher thread only; readers use `retired`).
  bool done = false;
  BackendResult<void> result;

  /// Published-to-readers flag: the daemon stores it (release) after the
  /// result AND timeline are final -- cross-thread readers acquire it
  /// before touching either.
  std::atomic<bool> retired{false};

  // --- commit-daemon bookkeeping (queue fields under the daemon's lock,
  // --- the rest written once before enqueue or once at flush claim) ---
  std::uint64_t session_serial = 0;  // owning session, for forget()
  std::size_t max_group = 1;         // owning session's effective group
  std::size_t batch_size = 0;        // session batch override (0 = backend)
  sim::SimTime flush_deadline = 0;   // relative, from SessionConfig (0 = none)
  sim::SimTime enqueue_time = 0;
  sim::SimTime deadline_at = 0;      // absolute flush deadline (0 = none)
  std::uint64_t group_seq = 0;       // flush group this ticket rode in
};

/// Handle to one submitted close. Cheap to copy; outlives the session.
class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::shared_ptr<const TicketState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const { return state_ == nullptr ? 0 : state_->id; }

  /// The backend finished processing this close (after the group it rode
  /// in flushed -- at the latest at the next sync()).
  bool done() const {
    return state_ != nullptr &&
           state_->retired.load(std::memory_order_acquire);
  }

  /// done() and the close is durable.
  bool ok() const { return done() && state_->result.has_value(); }

  /// The per-close failure; call only when done() && !ok().
  const BackendError& error() const { return state_->result.error(); }

  /// This close's end-to-end virtual latency: exclusive service time plus
  /// queued "idle" wait plus the flush group's shared round trips, exactly
  /// what close.latency_us records. 0 until done().
  sim::SimTime elapsed() const {
    return done() ? state_->timeline.elapsed : 0;
  }

 private:
  std::shared_ptr<const TicketState> state_;
};

/// One backend's commit daemon: the single drain of the per-backend MPSC
/// submit queue, after kivaloo's kvlds dispatcher. There is no dedicated
/// daemon thread -- in a discrete-event world the daemon is a role: the
/// submitting thread whose enqueue makes the group flushable, the syncing
/// thread at a barrier, or the clock event a flush deadline scheduled
/// claims the `flushing_` token and drains the queue into the backend's
/// commit_group. Submits arriving while a flush is in flight enqueue and
/// return immediately: the active flusher re-checks the trigger when it
/// finishes, so they join the next group rather than blocking.
class CommitDaemon : public std::enable_shared_from_this<CommitDaemon> {
 public:
  CommitDaemon(ProvenanceBackend& backend, sim::LatencyLedger* ledger,
               sim::SimClock* clock, obs::Tracer* tracer = nullptr,
               obs::MetricsRegistry* metrics = nullptr)
      : backend_(&backend), ledger_(ledger), clock_(clock), tracer_(tracer) {
    if (metrics != nullptr) {
      group_size_hist_ = &metrics->histogram("daemon.group_size");
      queue_depth_hist_ = &metrics->histogram("daemon.queue_depth");
      flush_group_full_ = &metrics->counter("daemon.flush.group_full");
      flush_deadline_ = &metrics->counter("daemon.flush.deadline");
      flush_sync_ = &metrics->counter("daemon.flush.sync");
      queue_wait_us_ = &metrics->counter("idle.queue_wait_us");
    }
  }
  CommitDaemon(const CommitDaemon&) = delete;
  CommitDaemon& operator=(const CommitDaemon&) = delete;

  /// A session's identity with the daemon (forget() scope).
  std::uint64_t register_session();

  /// Enqueue one close. Flushes inline (possibly several groups) when the
  /// enqueue makes the trigger fire and no flush is in flight; otherwise
  /// returns immediately. May throw from a flush it ran.
  void submit(const std::shared_ptr<TicketState>& ticket);

  /// Durability barrier: block until every ticket in `tickets` is retired,
  /// flushing the queue (and waiting out other flushers) as needed. May
  /// throw from a flush it ran.
  void barrier(const std::vector<std::shared_ptr<TicketState>>& tickets);

  /// Deadline hook, fired by a SimClock event: flush if the oldest queued
  /// submit's deadline has expired and nobody is flushing. A stale wake
  /// (queue already flushed) is a no-op. May throw from a flush it ran --
  /// the crash then propagates out of the clock advance, exactly like a
  /// client dying mid-deadline-flush.
  void poll();

  /// Drop `session_serial`'s still-queued tickets (the owning session is
  /// being destroyed before a barrier): they are marked kCrashed and never
  /// handed to the backend. In-flight tickets are settled by their flush.
  void forget(std::uint64_t session_serial);

  /// Queued (not yet flushing) submits, across all sessions.
  std::size_t queued() const;

 private:
  /// The trigger warranting a flush right now, if any: full group (the
  /// smallest effective max_group among queued tickets -- a small-group
  /// session flushes everyone sooner) or expired deadline.
  std::optional<FlushTrigger> trigger_locked() const;
  /// Claim the flusher token, drain the whole queue as one group, run the
  /// backend's commit_group unlocked, settle/publish the tickets, release
  /// the token. `lk` is held on entry and exit.
  void flush_group(std::unique_lock<std::mutex>& lk, FlushTrigger trigger);

  ProvenanceBackend* backend_;
  sim::LatencyLedger* ledger_;
  sim::SimClock* clock_;
  obs::Tracer* tracer_;
  obs::Histogram* group_size_hist_ = nullptr;
  obs::Histogram* queue_depth_hist_ = nullptr;
  obs::Counter* flush_group_full_ = nullptr;
  obs::Counter* flush_deadline_ = nullptr;
  obs::Counter* flush_sync_ = nullptr;
  obs::Counter* queue_wait_us_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<TicketState>> queue_;
  bool flushing_ = false;
  std::uint64_t next_group_seq_ = 0;
  std::uint64_t next_session_serial_ = 1;
};

/// One client's asynchronous close stream. Each session is driven from one
/// thread, but many sessions (threads) may share a backend: their submits
/// interleave in the backend's commit daemon, and a flush group may carry
/// closes from several sessions.
class Session {
 public:
  /// Built by ProvenanceBackend::open_session. `clock` powers deadline
  /// flushes (null: deadlines disabled, e.g. test backends with no env).
  /// `tracer`/`metrics` (null: dark) are the env's observability surfaces:
  /// submits and syncs become spans on the client's track, every ticket
  /// timeline gets its own named track, and retired closes feed the
  /// close.latency_us histogram.
  Session(ProvenanceBackend& backend, SessionConfig config,
          sim::LatencyLedger* ledger, sim::SimClock* clock = nullptr,
          obs::Tracer* tracer = nullptr,
          obs::MetricsRegistry* metrics = nullptr);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Enqueue one close. Returns immediately unless the enqueue triggers a
  /// flush (group full, or the backend has no group commit) while no flush
  /// is in flight, in which case this thread runs the flush before
  /// returning. May throw sim::CrashError from a flush.
  Ticket submit(const pass::FlushUnit& unit);

  /// Durability barrier: every submit of this session is flushed (the
  /// daemon drains the shared queue, so causally earlier submits of other
  /// sessions ride along), and the first per-close failure since the last
  /// sync is reported (success if every ticket since then is durable).
  /// May throw sim::CrashError from the flush.
  BackendResult<void> sync();

  /// Read-your-writes read path. A pending (unsynced) submit of this
  /// session is served from the in-flight queue -- the submitted data,
  /// records and version, zero cloud calls; otherwise the backend read
  /// path answers, floored at the session's own last durable write (a
  /// stale replica cannot roll the session's view of its own writes
  /// backwards).
  BackendResult<ReadResult> read(const std::string& object,
                                 std::uint32_t max_retries = 64);

  /// This session's closes submitted but not yet durable (or failed).
  std::size_t pending() const;
  /// Closes submitted over the session's lifetime.
  std::uint64_t submitted() const { return next_ticket_id_ - 1; }

  const SessionConfig& config() const { return config_; }

 private:
  /// Absorb retired tickets: merge each flush group's timelines into the
  /// caller's by critical path, record the first error, drop them from the
  /// outstanding list.
  void reap();

  ProvenanceBackend* backend_;
  SessionConfig config_;
  std::size_t max_group_ = 1;  // effective (1 when no group commit)
  sim::LatencyLedger* ledger_;
  obs::Tracer* tracer_ = nullptr;
  obs::Histogram* close_latency_ = nullptr;
  bool named_client_track_ = false;
  std::shared_ptr<CommitDaemon> daemon_;
  std::uint64_t serial_ = 0;
  /// Submit-order tickets not yet reaped (retired prefix pending merge).
  std::vector<std::shared_ptr<TicketState>> outstanding_;
  /// Latest own write per object, for read-your-writes.
  std::map<std::string, std::shared_ptr<TicketState>> writes_;
  std::optional<BackendError> first_error_;
  std::uint64_t next_ticket_id_ = 1;
};

}  // namespace provcloud::cloudprov
