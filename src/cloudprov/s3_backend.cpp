#include "cloudprov/s3_backend.hpp"

#include <optional>

#include "cloudprov/serialize.hpp"
#include "cloudprov/session.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

namespace {
const util::SharedBytes kEmptyBytes = util::make_shared_bytes(util::Bytes{});
}

S3Backend::S3Backend(CloudServices& services, std::size_t parallelism)
    : services_(&services),
      topology_(DomainTopology::make(
          TopologyConfig{.shard_count = 1,
                         .parallelism = parallelism,
                         .ledger = &services.env->latency_ledger()})) {}

void S3Backend::commit_group(const std::vector<TicketState*>& group,
                             sim::LatencyLedger* ledger) {
  for (TicketState* ticket : group) {
    // The whole single-PUT close is exclusive to this ticket: land it on
    // the ticket's timeline so in-flight closes of other sessions overlap.
    std::optional<sim::LatencyLedger::ScopedTimeline> bind;
    if (ledger != nullptr) bind.emplace(*ledger, ticket->timeline);
    store_one(ticket->unit);
    ticket->done = true;
  }
}

void S3Backend::store_one(const pass::FlushUnit& unit) {
  aws::CloudEnv& env = *services_->env;
  env.failures().crash_point("s3.store.begin");

  // Step 2: convert provenance to S3 metadata; spill oversized records.
  S3MetadataEncoding enc = encode_unit_as_metadata(unit);
  for (std::size_t index : enc.spilled_indexes) {
    const pass::ProvenanceRecord& r = unit.records[index];
    const std::string key = overflow_key(unit.object, unit.version, index);
    auto result = services_->s3.put(kDataBucket, key, r.value_string());
    PROVCLOUD_REQUIRE_MSG(result.has_value(),
                          "overflow PUT failed: " + result.error().message);
    env.failures().crash_point("s3.store.after_overflow_put");
  }

  // Step 3: one PUT carries data + provenance atomically.
  env.failures().crash_point("s3.store.before_put");
  const util::SharedBytes data = unit.data != nullptr ? unit.data : kEmptyBytes;
  auto result =
      services_->s3.put_shared(kDataBucket, unit.object, data, enc.metadata);
  PROVCLOUD_REQUIRE_MSG(result.has_value(),
                        "data PUT failed: " + result.error().message);
  env.failures().crash_point("s3.store.after_put");
}

BackendResult<std::vector<pass::ProvenanceRecord>> S3Backend::resolve_spills(
    std::vector<pass::ProvenanceRecord> records, std::uint32_t max_retries) {
  for (pass::ProvenanceRecord& r : records) {
    if (r.is_xref()) continue;
    const std::string& value = r.text();
    if (value.rfind(kSpillMarker, 0) != 0) continue;
    const std::string key = value.substr(std::string(kSpillMarker).size());
    // The overflow object was PUT before the main object, but a stale
    // replica can still miss it: retry. This separate fetch is exactly why
    // the paper calls the overflow scheme a read-correctness hazard.
    bool resolved = false;
    for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
      auto got = services_->s3.get(kDataBucket, key);
      if (got) {
        r = pass::ProvenanceRecord{r.attribute, *got->data};
        if (is_xref_attribute(r.attribute)) {
          std::string object;
          std::uint32_t version = 0;
          if (parse_item_name(*got->data, object, version))
            r = pass::make_xref_record(r.attribute,
                                       pass::ObjectVersion{object, version});
        }
        resolved = true;
        break;
      }
    }
    if (!resolved)
      return backend_error(BackendErrorCode::kConsistencyExhausted,
                           "unresolvable provenance overflow object: " + key);
  }
  return records;
}

BackendResult<ReadResult> S3Backend::read(const std::string& object,
                                          std::uint32_t max_retries) {
  // A single GET returns data and provenance together: whatever version the
  // chosen replica holds, the pair is internally consistent.
  auto got = services_->s3.get(kDataBucket, object);
  std::uint32_t attempts = 0;
  while (!got && attempts < max_retries) {
    // NoSuchKey right after a PUT: propagation race; retry.
    ++attempts;
    got = services_->s3.get(kDataBucket, object);
  }
  if (!got)
    return backend_error(BackendErrorCode::kNotFound,
                         "object not found: " + object + " (" +
                             got.error().message + ")");

  DecodedMetadata decoded = decode_metadata(got->metadata);
  auto records = resolve_spills(std::move(decoded.records), max_retries);
  if (!records) return util::Unexpected(records.error());

  ReadResult out;
  out.data = got->data;
  out.records = std::move(*records);
  out.version = decoded.version;
  out.retries = attempts;
  out.verified = true;
  return out;
}

BackendResult<std::vector<pass::ProvenanceRecord>> S3Backend::get_provenance(
    const std::string& object, std::uint32_t version) {
  auto head = services_->s3.head(kDataBucket, object);
  std::uint32_t attempts = 0;
  while (!head && attempts < 64) {
    ++attempts;
    head = services_->s3.head(kDataBucket, object);
  }
  if (!head)
    return backend_error(BackendErrorCode::kNotFound,
                         "object not found: " + object);
  DecodedMetadata decoded = decode_metadata(head->metadata);
  if (decoded.version != version)
    return backend_error(
        BackendErrorCode::kUnsupported,
        "architecture 1 keeps only the provenance of the last stored "
        "version; requested " + std::to_string(version) + " but stored is " +
        std::to_string(decoded.version));
  return resolve_spills(std::move(decoded.records), 64);
}

std::unique_ptr<Session> S3Backend::do_open_session(SessionConfig config) {
  return std::make_unique<Session>(
      *this, std::move(config), &services_->env->latency_ledger(),
      &services_->env->clock(), &services_->env->tracer(),
      &services_->env->metrics());
}

std::unique_ptr<ProvenanceBackend> make_s3_backend(CloudServices& services) {
  return std::make_unique<S3Backend>(services);
}

}  // namespace provcloud::cloudprov
