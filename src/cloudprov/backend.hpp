// ProvenanceBackend: the public interface of the paper's contribution.
//
// A backend implements one of the three architectures from section 4. It
// receives FlushUnits from PASS at file close (store), serves the read-
// correctness read path (read), retrieves provenance (get_provenance),
// recovers after client crashes (recover), and -- for the WAL architecture --
// exposes pump()/quiesce() to drive its daemons deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/s3/s3.hpp"
#include "aws/simpledb/simpledb.hpp"
#include "aws/sqs/sqs.hpp"
#include "pass/local_cache.hpp"
#include "pass/record.hpp"
#include "util/expected.hpp"

namespace provcloud::cloudprov {

/// Which architecture a backend implements.
enum class Architecture {
  kS3Only,          // section 4.1
  kS3SimpleDb,      // section 4.2
  kS3SimpleDbSqs,   // section 4.3
  kS3SegmentLog,    // Arch 4: log-structured segments + SimpleDB index
};

const char* to_string(Architecture arch);

/// Result of the read-correctness read path.
struct ReadResult {
  util::SharedBytes data;
  std::vector<pass::ProvenanceRecord> records;
  std::uint32_t version = 0;
  /// Number of retry rounds the consistency check forced (Arch 2/3).
  std::uint32_t retries = 0;
  /// False when the backend returned a pair it cannot vouch for (Arch 1
  /// never sets this; Arch 2/3 set it only if retries were exhausted).
  bool verified = true;
};

/// Why a backend operation failed. Tests and callers branch on the code;
/// the message is for humans only.
enum class BackendErrorCode {
  kUnknown = 0,
  /// The object (or requested version) does not exist in the store.
  kNotFound,
  /// The consistency retry budget ran out before a verifiable view
  /// appeared (propagation race outlasted max_retries).
  kConsistencyExhausted,
  /// An underlying AWS service call failed in a way the protocol cannot
  /// absorb.
  kServiceError,
  /// The client crashed (injected CrashError) before this close became
  /// durable; the ticket's unit was never persisted.
  kCrashed,
  /// The architecture cannot serve this request (e.g. Arch 1 retains only
  /// the latest version's provenance).
  kUnsupported,
  /// The request was refused by admission control (per-tenant capacity
  /// exhausted, or a bounded queue rejected/shed it). Distinct from
  /// kServiceError: the request was well-formed and the services healthy --
  /// the caller exceeded its provisioned throughput and should retry after
  /// BackendError::retry_after.
  kThrottled,
};

const char* to_string(BackendErrorCode code);

struct BackendError {
  BackendErrorCode code = BackendErrorCode::kUnknown;
  std::string message;
  /// For kThrottled: virtual time until the caller's capacity refills
  /// enough to admit the request (0 = unknown, retry at caller's pace).
  sim::SimTime retry_after = 0;
};

template <typename T>
using BackendResult = util::Expected<T, BackendError>;

inline util::Unexpected<BackendError> backend_error(BackendErrorCode code,
                                                    std::string message) {
  return util::Unexpected(BackendError{code, std::move(message), 0});
}

inline util::Unexpected<BackendError> backend_throttled(
    std::string message, sim::SimTime retry_after) {
  return util::Unexpected(
      BackendError{BackendErrorCode::kThrottled, std::move(message),
                   retry_after});
}

/// The services a backend runs against. One bundle per experiment; shared
/// by backends and query engines so all billing lands in one meter.
struct CloudServices {
  explicit CloudServices(aws::CloudEnv& env)
      : env(&env), s3(env), sdb(env), sqs(env) {}

  aws::CloudEnv* env;
  aws::S3Service s3;
  aws::SimpleDbService sdb;
  aws::SqsService sqs;
};

class Session;
struct TicketState;
class CommitDaemon;
class DomainTopology;

/// Per-client session knobs (see ProvenanceBackend::open_session). The one
/// typed home of every batching knob: group size, flush deadline and the
/// SimpleDB batch width all ride here, so a session fully describes how its
/// closes may be coalesced.
struct SessionConfig {
  /// Names the client the session belongs to (diagnostics; each session is
  /// driven from one thread, but many sessions may share a backend).
  std::string client_id = "client-0";
  /// Closes coalesced between durability barriers: the commit daemon
  /// flushes once this many submits are queued. 1 reproduces the paper's
  /// per-close protocol bit-for-bit (same requests, same billing, same
  /// elapsed time); larger groups let the backend commit submitted closes
  /// together (Arch 2: cross-close BatchPutAttributes chains; Arch 3:
  /// batched WAL sends). Backends without group commit (Arch 1) treat
  /// every submit as an immediate store regardless of this value.
  /// 0 means 1 (no coalescing).
  std::size_t max_group = 0;
  /// Adaptive group flush: a queued submit older than this flushes the
  /// pending group even when it is not full (kivaloo's kvlds deadline).
  /// The wait is charged to the ticket's ledger timeline as "idle" --
  /// deadline batching trades elapsed time for round trips, and the ledger
  /// shows it. 0 disables the deadline (flush only on group-full or sync).
  sim::SimTime flush_deadline = 0;
  /// Items per BatchPutAttributes call when this session's groups hit
  /// SimpleDB directly (Arch 2). 0 inherits the backend's configured batch
  /// width; 1 forces the legacy one-PutAttributes-per-chunk path.
  std::size_t batch_size = 0;

  /// The group size with the zero default resolved (never 0).
  std::size_t resolved_group() const { return max_group > 0 ? max_group : 1; }
};

class ProvenanceBackend {
 public:
  virtual ~ProvenanceBackend() = default;

  virtual Architecture architecture() const = 0;
  virtual std::string name() const = 0;

  /// The close-time protocol: persist one object version and its
  /// provenance. May throw sim::CrashError at an armed crash point.
  /// Non-virtual by design: store() IS a one-shot session (open_session ->
  /// submit -> sync at group size 1), so every backend's single-close path
  /// and its commit_group primitive are one code path. Defined in
  /// session.cpp, where Session is complete.
  void store(const pass::FlushUnit& unit);

  /// The session-oriented close path: submits enqueue closes without
  /// blocking on the cloud round-trip chain, sync() is the durability
  /// barrier, and between barriers the backend's commit daemon may
  /// coalesce submitted closes into one group commit. Each session is
  /// driven from one thread, but a backend accepts many concurrent
  /// sessions: their submits feed one MPSC queue drained by a single
  /// commit daemon (see Session for the full contract).
  /// (Non-virtual so the default argument exists exactly once; backends
  /// override do_open_session. Defined in session.cpp, where Session is
  /// complete.)
  std::unique_ptr<Session> open_session(
      SessionConfig config = SessionConfig{});

  /// Whether submits may legally wait for a group (Arch 2/3). When false
  /// (Arch 1's single-PUT protocol, whose Table-1 properties depend on
  /// submit == store), sessions flush every submit immediately.
  virtual bool supports_group_commit() const { return false; }

  /// The group-commit primitive behind Session and store(): persist every
  /// unit of `group` (in submit order where ordering matters), marking
  /// each ticket done as its close becomes durable. `ledger` (may be null)
  /// receives each ticket's exclusive service time on the ticket's own
  /// timeline so the commit daemon can merge in-flight tickets by critical
  /// path. The only close-path entry point a backend implements.
  virtual void commit_group(const std::vector<TicketState*>& group,
                            sim::LatencyLedger* ledger) = 0;

  /// The backend's shard/parallelism layout, when it has one (Arch 2/3 and
  /// any backend that overlaps multi-object reads). The base read_many
  /// routes through it; null means sequential.
  virtual std::shared_ptr<const DomainTopology> topology() const {
    return nullptr;
  }

  /// The read path a scientist uses: fetch the latest data of `object`
  /// together with its provenance, enforcing whatever consistency the
  /// architecture offers. `max_retries` bounds the Arch-2/3 consistency
  /// retry loop.
  virtual BackendResult<ReadResult> read(const std::string& object,
                                         std::uint32_t max_retries = 64) = 0;

  /// Multi-object read path: one read() per object, results in input
  /// order. The default routes through topology()->run_tasks so every
  /// backend with a parallel topology overlaps the per-object consistency
  /// rounds (null topology or parallelism 1: a sequential loop, charges in
  /// issue order). Defined in session.cpp, where DomainTopology is
  /// complete.
  virtual std::vector<BackendResult<ReadResult>> read_many(
      const std::vector<std::string>& objects, std::uint32_t max_retries = 64);

  /// Retrieve the provenance of one (object, version), resolving spilled
  /// records.
  virtual BackendResult<std::vector<pass::ProvenanceRecord>> get_provenance(
      const std::string& object, std::uint32_t version) = 0;

  /// Client-restart recovery (after a CrashError was thrown from store or
  /// pump). Arch 1: nothing. Arch 2: orphan-provenance scan. Arch 3: WAL
  /// replay via the commit daemon.
  virtual void recover() = 0;

  /// Drive background daemons one step (Arch 3's commit daemon; no-op
  /// elsewhere).
  virtual void pump() {}

  /// Run daemons until stable (e.g. WAL fully drained). Test/bench helper.
  virtual void quiesce() {}

  /// Paper Table 1 row, verified empirically by cloudprov/properties.
  struct PropertyClaims {
    bool atomicity = false;
    bool consistency = false;
    bool causal_ordering = false;
    bool efficient_query = false;
  };
  virtual PropertyClaims claims() const = 0;

  /// The backend's commit daemon, created lazily on first use (the first
  /// caller's ledger/clock/tracer/metrics win; all sessions of one backend
  /// share one env, so they agree). Every session's submits funnel through
  /// it -- one MPSC queue, one flusher at a time. Defined in session.cpp.
  std::shared_ptr<CommitDaemon> commit_daemon(
      sim::LatencyLedger* ledger, sim::SimClock* clock,
      obs::Tracer* tracer = nullptr, obs::MetricsRegistry* metrics = nullptr);

 protected:
  /// open_session's virtual hook.
  virtual std::unique_ptr<Session> do_open_session(SessionConfig config) = 0;

 private:
  std::mutex daemon_mu_;
  std::shared_ptr<CommitDaemon> daemon_;
};

inline const char* to_string(Architecture arch) {
  switch (arch) {
    case Architecture::kS3Only: return "S3";
    case Architecture::kS3SimpleDb: return "S3+SimpleDB";
    case Architecture::kS3SimpleDbSqs: return "S3+SimpleDB+SQS";
    case Architecture::kS3SegmentLog: return "S3-segments+SimpleDB";
  }
  return "?";
}

inline const char* to_string(BackendErrorCode code) {
  switch (code) {
    case BackendErrorCode::kUnknown: return "unknown";
    case BackendErrorCode::kNotFound: return "not-found";
    case BackendErrorCode::kConsistencyExhausted:
      return "consistency-exhausted";
    case BackendErrorCode::kServiceError: return "service-error";
    case BackendErrorCode::kCrashed: return "crashed";
    case BackendErrorCode::kUnsupported: return "unsupported";
    case BackendErrorCode::kThrottled: return "throttled";
  }
  return "?";
}

/// Factories (defined with each backend).
std::unique_ptr<ProvenanceBackend> make_s3_backend(CloudServices& services);
struct SdbBackendConfig;
std::unique_ptr<ProvenanceBackend> make_sdb_backend(CloudServices& services);
std::unique_ptr<ProvenanceBackend> make_sdb_backend(
    CloudServices& services, const SdbBackendConfig& config);
struct WalBackendConfig;
std::unique_ptr<ProvenanceBackend> make_wal_backend(CloudServices& services);
std::unique_ptr<ProvenanceBackend> make_wal_backend(
    CloudServices& services, const WalBackendConfig& config);
struct LsbBackendConfig;
std::unique_ptr<ProvenanceBackend> make_lsb_backend(CloudServices& services);
std::unique_ptr<ProvenanceBackend> make_lsb_backend(
    CloudServices& services, const LsbBackendConfig& config);
std::unique_ptr<ProvenanceBackend> make_backend(Architecture arch,
                                                CloudServices& services);

}  // namespace provcloud::cloudprov
