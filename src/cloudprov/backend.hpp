// ProvenanceBackend: the public interface of the paper's contribution.
//
// A backend implements one of the three architectures from section 4. It
// receives FlushUnits from PASS at file close (store), serves the read-
// correctness read path (read), retrieves provenance (get_provenance),
// recovers after client crashes (recover), and -- for the WAL architecture --
// exposes pump()/quiesce() to drive its daemons deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/s3/s3.hpp"
#include "aws/simpledb/simpledb.hpp"
#include "aws/sqs/sqs.hpp"
#include "pass/local_cache.hpp"
#include "pass/record.hpp"
#include "util/expected.hpp"

namespace provcloud::cloudprov {

/// Which architecture a backend implements.
enum class Architecture {
  kS3Only,          // section 4.1
  kS3SimpleDb,      // section 4.2
  kS3SimpleDbSqs,   // section 4.3
};

const char* to_string(Architecture arch);

/// Result of the read-correctness read path.
struct ReadResult {
  util::SharedBytes data;
  std::vector<pass::ProvenanceRecord> records;
  std::uint32_t version = 0;
  /// Number of retry rounds the consistency check forced (Arch 2/3).
  std::uint32_t retries = 0;
  /// False when the backend returned a pair it cannot vouch for (Arch 1
  /// never sets this; Arch 2/3 set it only if retries were exhausted).
  bool verified = true;
};

struct BackendError {
  std::string message;
};

template <typename T>
using BackendResult = util::Expected<T, BackendError>;

inline util::Unexpected<BackendError> backend_error(std::string message) {
  return util::Unexpected(BackendError{std::move(message)});
}

/// The services a backend runs against. One bundle per experiment; shared
/// by backends and query engines so all billing lands in one meter.
struct CloudServices {
  explicit CloudServices(aws::CloudEnv& env)
      : env(&env), s3(env), sdb(env), sqs(env) {}

  aws::CloudEnv* env;
  aws::S3Service s3;
  aws::SimpleDbService sdb;
  aws::SqsService sqs;
};

class ProvenanceBackend {
 public:
  virtual ~ProvenanceBackend() = default;

  virtual Architecture architecture() const = 0;
  virtual std::string name() const = 0;

  /// The close-time protocol: persist one object version and its
  /// provenance. May throw sim::CrashError at an armed crash point.
  virtual void store(const pass::FlushUnit& unit) = 0;

  /// The read path a scientist uses: fetch the latest data of `object`
  /// together with its provenance, enforcing whatever consistency the
  /// architecture offers. `max_retries` bounds the Arch-2/3 consistency
  /// retry loop.
  virtual BackendResult<ReadResult> read(const std::string& object,
                                         std::uint32_t max_retries = 64) = 0;

  /// Multi-object read path: one read() per object, results in input
  /// order. Backends with a parallel topology overlap the per-object
  /// consistency rounds; the default is a sequential loop.
  virtual std::vector<BackendResult<ReadResult>> read_many(
      const std::vector<std::string>& objects, std::uint32_t max_retries = 64) {
    std::vector<BackendResult<ReadResult>> out;
    out.reserve(objects.size());
    for (const std::string& object : objects)
      out.push_back(read(object, max_retries));
    return out;
  }

  /// Retrieve the provenance of one (object, version), resolving spilled
  /// records.
  virtual BackendResult<std::vector<pass::ProvenanceRecord>> get_provenance(
      const std::string& object, std::uint32_t version) = 0;

  /// Client-restart recovery (after a CrashError was thrown from store or
  /// pump). Arch 1: nothing. Arch 2: orphan-provenance scan. Arch 3: WAL
  /// replay via the commit daemon.
  virtual void recover() = 0;

  /// Drive background daemons one step (Arch 3's commit daemon; no-op
  /// elsewhere).
  virtual void pump() {}

  /// Run daemons until stable (e.g. WAL fully drained). Test/bench helper.
  virtual void quiesce() {}

  /// Paper Table 1 row, verified empirically by cloudprov/properties.
  struct PropertyClaims {
    bool atomicity = false;
    bool consistency = false;
    bool causal_ordering = false;
    bool efficient_query = false;
  };
  virtual PropertyClaims claims() const = 0;
};

inline const char* to_string(Architecture arch) {
  switch (arch) {
    case Architecture::kS3Only: return "S3";
    case Architecture::kS3SimpleDb: return "S3+SimpleDB";
    case Architecture::kS3SimpleDbSqs: return "S3+SimpleDB+SQS";
  }
  return "?";
}

/// Factories (defined with each backend).
std::unique_ptr<ProvenanceBackend> make_s3_backend(CloudServices& services);
struct SdbBackendConfig;
std::unique_ptr<ProvenanceBackend> make_sdb_backend(CloudServices& services);
std::unique_ptr<ProvenanceBackend> make_sdb_backend(
    CloudServices& services, const SdbBackendConfig& config);
struct WalBackendConfig;
std::unique_ptr<ProvenanceBackend> make_wal_backend(CloudServices& services);
std::unique_ptr<ProvenanceBackend> make_wal_backend(
    CloudServices& services, const WalBackendConfig& config);
std::unique_ptr<ProvenanceBackend> make_backend(Architecture arch,
                                                CloudServices& services);

}  // namespace provcloud::cloudprov
