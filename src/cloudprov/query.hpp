// The paper's three representative provenance queries (section 5, Table 3),
// implemented against both storage layouts:
//
//   Q.1  given an object and version, retrieve its provenance -- run over
//        every object ("the query results for one object are insufficient
//        to differentiate the two methods");
//   Q.2  find all files that were outputs of blast;
//   Q.3  find all descendants of files derived from blast.
//
// The S3 engine can only HEAD-scan every object (plus a GET per spilled
// record): no search capability. The SimpleDB engine uses the service's
// automatic indexes via Query/QueryWithAttributes; Q.3 must iterate level
// by level because SimpleDB "does not support recursive queries or stored
// procedures".
//
// Costs are not returned by these calls: the caller diffs
// CloudEnv::meter() snapshots around them, exactly how the benches build
// Table 3.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloudprov/backend.hpp"
#include "pass/record.hpp"

namespace provcloud::cloudprov {

struct Q1Result {
  std::uint64_t object_versions = 0;  // provenance sets retrieved
  std::uint64_t records = 0;          // records retrieved in total
};

class QueryEngine {
 public:
  virtual ~QueryEngine() = default;
  virtual std::string name() const = 0;

  virtual Q1Result q1_all_provenance() = 0;
  /// File object names written by any process whose NAME is `program`.
  virtual std::set<std::string> q2_outputs_of(const std::string& program) = 0;
  /// File object names transitively derived from outputs of `program`
  /// (includes the outputs themselves).
  virtual std::set<std::string> q3_descendants_of(const std::string& program) = 0;
};

/// Arch-1 engine: full metadata scans over the data bucket.
std::unique_ptr<QueryEngine> make_s3_query_engine(CloudServices& services);

/// Arch-2/3 engine: indexed SimpleDB queries ("The query results are the
/// same for the last two architectures (as they both query SimpleDB)").
/// With shard_count > 1 every query scatters across the shard domains and
/// the per-domain answers are gathered: since items are partitioned by
/// object hash, the merged result is identical at any shard count. With
/// parallelism > 1 the per-domain requests overlap on the topology's
/// executor; the gathered answers (and metered call counts) are identical
/// at any parallelism.
struct SdbQueryConfig {
  /// OR-terms per predicate when chunking large ancestor sets into
  /// ['INPUT' = 'a' or 'INPUT' = 'b' ...] expressions.
  std::size_t or_terms_per_query = 20;
  /// Must match the shard_count the storing backend used.
  std::size_t shard_count = 1;
  /// Concurrent per-domain requests for scatter/gather. 1 is sequential.
  std::size_t parallelism = 1;
};
class ShardRouter;
class DomainTopology;
std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services);
std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services,
                                                   const SdbQueryConfig& config);
/// Build the engine from the storing backend's router (SdbBackend::router(),
/// WalBackend::router()), so the shard layout cannot drift out of sync.
std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services,
                                                   const ShardRouter& router);
/// Share the storing backend's topology outright (SdbBackend::topology(),
/// WalBackend::topology()): same layout *and* same executor.
std::unique_ptr<QueryEngine> make_sdb_query_engine(
    CloudServices& services, std::shared_ptr<const DomainTopology> topology);

}  // namespace provcloud::cloudprov
