// The paper's three representative provenance queries (section 5, Table 3),
// implemented against both storage layouts:
//
//   Q.1  given an object and version, retrieve its provenance -- run over
//        every object ("the query results for one object are insufficient
//        to differentiate the two methods");
//   Q.2  find all files that were outputs of blast;
//   Q.3  find all descendants of files derived from blast.
//
// The S3 engine can only HEAD-scan every object (plus a GET per spilled
// record): no search capability. The SimpleDB engine uses the service's
// automatic indexes via Query/QueryWithAttributes; Q.3 must iterate level
// by level because SimpleDB "does not support recursive queries or stored
// procedures".
//
// Costs are not returned by these calls: the caller diffs
// CloudEnv::meter() snapshots around them, exactly how the benches build
// Table 3.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloudprov/ancestry.hpp"
#include "cloudprov/backend.hpp"
#include "pass/record.hpp"

namespace provcloud::cloudprov {

namespace manifest {
class ManifestReader;
}

struct Q1Result {
  std::uint64_t object_versions = 0;  // provenance sets retrieved
  std::uint64_t records = 0;          // records retrieved in total
};

class QueryEngine {
 public:
  virtual ~QueryEngine() = default;
  virtual std::string name() const = 0;

  virtual Q1Result q1_all_provenance() = 0;
  /// File object names written by any process whose NAME is `program`.
  virtual std::set<std::string> q2_outputs_of(const std::string& program) = 0;
  /// File object names transitively derived from outputs of `program`
  /// (includes the outputs themselves).
  virtual std::set<std::string> q3_descendants_of(const std::string& program) = 0;

  /// Full ancestry closure of (object, version) -- the deep walk the
  /// read-path engines compete on. Every engine answers it from its own
  /// layout (metadata scan, per-shard SimpleDB gets, or snapshot
  /// manifests), but the result is the same graph.
  virtual AncestryResult ancestry(const std::string& object,
                                  std::uint32_t version,
                                  std::size_t max_nodes = 10000) = 0;

  /// Whether ancestry_as_of is available (manifest engines only).
  virtual bool supports_time_travel() const { return false; }

  /// Time travel: the ancestry closure as the store stood when
  /// `snapshot_id` was rolled. Nodes the snapshot does not cover land in
  /// `missing` (never served from the mutable tail). Engines without
  /// snapshots fail a requirement -- gate on supports_time_travel().
  virtual AncestryResult ancestry_as_of(std::uint64_t snapshot_id,
                                        const std::string& object,
                                        std::uint32_t version,
                                        std::size_t max_nodes = 10000);
};

/// Arch-1 engine: full metadata scans over the data bucket.
std::unique_ptr<QueryEngine> make_s3_query_engine(CloudServices& services);

/// Arch-4 engine: linear scan over the segment log (GET every segment,
/// evaluate locally). The log retains every version's provenance, so
/// ancestry walks resolve old ancestor versions, but search is scan-based
/// like Arch 1: query cost grows with the log, not the result.
std::unique_ptr<QueryEngine> make_lsb_query_engine(CloudServices& services);

/// Arch-2/3 engine: indexed SimpleDB queries ("The query results are the
/// same for the last two architectures (as they both query SimpleDB)").
/// With shard_count > 1 every query scatters across the shard domains and
/// the per-domain answers are gathered: since items are partitioned by
/// object hash, the merged result is identical at any shard count. With
/// parallelism > 1 the per-domain requests overlap on the topology's
/// executor; the gathered answers (and metered call counts) are identical
/// at any parallelism.
struct SdbQueryConfig {
  /// OR-terms per predicate when chunking large ancestor sets into
  /// ['INPUT' = 'a' or 'INPUT' = 'b' ...] expressions.
  std::size_t or_terms_per_query = 20;
  /// Must match the shard_count the storing backend used.
  std::size_t shard_count = 1;
  /// Concurrent per-domain requests for scatter/gather. 1 is sequential.
  std::size_t parallelism = 1;
};
class ShardRouter;
class DomainTopology;
std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services);
std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services,
                                                   const SdbQueryConfig& config);
/// Build the engine from the storing backend's router (SdbBackend::router(),
/// WalBackend::router()), so the shard layout cannot drift out of sync.
std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services,
                                                   const ShardRouter& router);
/// Share the storing backend's topology outright (SdbBackend::topology(),
/// WalBackend::topology()): same layout *and* same executor.
std::unique_ptr<QueryEngine> make_sdb_query_engine(
    CloudServices& services, std::shared_ptr<const DomainTopology> topology);

/// Manifest-backed engine: q1-q3 answer exactly like the SimpleDB engine
/// (indexed queries are already one round trip per predicate), but ancestry
/// walks are served from the committed snapshot -- AncestorCache, then
/// min/max-pruned manifest-block GETs scatter/gathered through the
/// topology, then the SimpleDB mutable-tail fallback -- with results
/// bit-identical to the pure scatter path. supports_time_travel() is true:
/// ancestry_as_of answers from any committed historical snapshot.
///
/// Config migration: SdbQueryConfig call sites keep working unchanged; the
/// manifest engine nests that struct as `base` and only adds the snapshot
/// read-path knobs on top.
struct ManifestQueryConfig {
  SdbQueryConfig base;
  /// AncestorCache capacity (transitive-closure fragments kept resident).
  std::size_t cache_capacity = 4096;
  /// Propagation-retry budget of the snapshot read path.
  std::uint32_t max_retries = 64;
};
std::unique_ptr<QueryEngine> make_manifest_query_engine(
    CloudServices& services, std::shared_ptr<const DomainTopology> topology,
    const ManifestQueryConfig& config = {});
/// Share an existing reader (and therefore its AncestorCache) with other
/// consumers -- the hints prefetcher, tests poking cache stats.
std::unique_ptr<QueryEngine> make_manifest_query_engine(
    CloudServices& services, std::shared_ptr<manifest::ManifestReader> reader,
    const ManifestQueryConfig& config = {});

}  // namespace provcloud::cloudprov
