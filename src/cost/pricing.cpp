#include "cost/pricing.hpp"

#include <cstdio>

namespace provcloud::cost {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

bool is_s3_put_class(const std::string& op) {
  return op == "PUT" || op == "COPY" || op == "POST" || op == "LIST";
}
}  // namespace

CostEstimate estimate_cost(const sim::MeterSnapshot& snapshot,
                           const PriceSheet& prices) {
  CostEstimate out;
  for (const auto& [key, counter] : snapshot.counters) {
    const auto& [service, op] = key;
    const double calls = static_cast<double>(counter.calls);
    const double in_gb = static_cast<double>(counter.bytes_in) / kGiB;
    const double out_gb = static_cast<double>(counter.bytes_out) / kGiB;
    if (service == "s3") {
      if (is_s3_put_class(op))
        out.s3_requests += calls / 1000.0 * prices.s3_per_1000_put_copy_list;
      else
        out.s3_requests += calls / 10000.0 * prices.s3_per_10000_get_other;
      out.s3_transfer += in_gb * prices.s3_transfer_in_per_gb +
                         out_gb * prices.s3_transfer_out_per_gb;
    } else if (service == "sdb") {
      const double payload_kb =
          static_cast<double>(counter.bytes_in + counter.bytes_out) / 1024.0;
      const double box_seconds = calls * prices.sdb_box_seconds_base +
                                 payload_kb * prices.sdb_box_seconds_per_kb;
      out.sdb_box_usage += box_seconds / 3600.0 * prices.sdb_per_machine_hour;
      out.sdb_transfer += in_gb * prices.sdb_transfer_in_per_gb +
                          out_gb * prices.sdb_transfer_out_per_gb;
    } else if (service == "sqs") {
      out.sqs_requests += calls / 10000.0 * prices.sqs_per_10000_requests;
      out.sqs_transfer += in_gb * prices.sqs_transfer_in_per_gb +
                          out_gb * prices.sqs_transfer_out_per_gb;
    }
  }
  out.s3_storage_month = static_cast<double>(snapshot.storage_bytes("s3")) /
                         kGiB * prices.s3_storage_per_gb_month;
  out.sdb_storage_month = static_cast<double>(snapshot.storage_bytes("sdb")) /
                          kGiB * prices.sdb_storage_per_gb_month;
  return out;
}

std::string format_usd(double usd) {
  char buf[32];
  if (usd >= 0.01)
    std::snprintf(buf, sizeof buf, "$%.2f", usd);
  else
    std::snprintf(buf, sizeof buf, "$%.5f", usd);
  return buf;
}

}  // namespace provcloud::cost
