// The paper's section-5 estimation formulas.
//
// The paper never ran the full protocols; it *estimated* storage cost from
// trace statistics:
//
//   Arch 1 (S3):          provenance rides the data PUT; extra ops only for
//                         records > 1 KB:      ops = N_provrecs>1KB
//   Arch 2 (S3+SimpleDB): ops = N_SimpleDBitems + N_provrecs>1KB
//   Arch 3 (+SQS):        storage = 2*S_SQS + S_SimpleDB
//                         ops = 2*(N_S3objects + provsize/8KB)
//                               + N_SimpleDBitems + N_provrecs>1KB
//
// We implement the same formulas over our measured trace statistics so the
// benches can print the paper-style estimate next to the value measured by
// actually running each protocol against the simulators.
#pragma once

#include <cstdint>
#include <string>

#include "pass/observer.hpp"

namespace provcloud::cost {

/// Inputs to the formulas, derived from a PASS run.
struct TraceQuantities {
  std::uint64_t n_objects = 0;        // data-bearing (file) versions: raw PUTs
  std::uint64_t n_items = 0;          // SimpleDB items: every flushed version
  std::uint64_t n_large_records = 0;  // records > 1 KB
  std::uint64_t provenance_bytes = 0; // serialized record payloads
  std::uint64_t data_bytes = 0;       // raw data
};

TraceQuantities quantities_from(const pass::ObserverStats& stats);

/// One row of Table 2, estimated the paper's way.
struct StorageEstimate {
  std::uint64_t provenance_bytes = 0;  // space attributable to provenance
  std::uint64_t extra_ops = 0;         // ops beyond the raw-data PUTs
};

StorageEstimate estimate_arch1(const TraceQuantities& q);
StorageEstimate estimate_arch2(const TraceQuantities& q);
StorageEstimate estimate_arch3(const TraceQuantities& q);

/// Raw baseline ("the amount of data that will be stored in S3 ... without
/// any provenance"): ops = one PUT per object version.
StorageEstimate estimate_raw(const TraceQuantities& q);

}  // namespace provcloud::cost
