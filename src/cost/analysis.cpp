#include "cost/analysis.hpp"

#include "util/bytes.hpp"

namespace provcloud::cost {

TraceQuantities quantities_from(const pass::ObserverStats& stats) {
  TraceQuantities q;
  // Raw data ops count file PUTs only; SimpleDB items cover every flushed
  // version including transient processes and pipes -- the same accounting
  // the paper uses (its item count is several times its raw op count).
  q.n_objects = stats.file_units;
  q.n_items = stats.flush_units;
  q.n_large_records = stats.large_records;
  q.provenance_bytes = stats.provenance_bytes;
  q.data_bytes = stats.data_bytes_flushed;
  return q;
}

StorageEstimate estimate_raw(const TraceQuantities& q) {
  StorageEstimate e;
  e.provenance_bytes = 0;
  e.extra_ops = q.n_objects;  // one PUT per object version, data only
  return e;
}

StorageEstimate estimate_arch1(const TraceQuantities& q) {
  StorageEstimate e;
  // Provenance stored as S3 metadata with the same PUT: no extra space
  // category beyond the serialized records themselves, no extra ops except
  // one PUT per oversized record.
  e.provenance_bytes = q.provenance_bytes;
  e.extra_ops = q.n_large_records;
  return e;
}

StorageEstimate estimate_arch2(const TraceQuantities& q) {
  StorageEstimate e;
  // SimpleDB's representation adds item-name and attribute-structure
  // overhead; the paper measured 167.8MB vs 121.8MB (~1.38x). We charge the
  // serialized payload plus one item name per version -- the measured run
  // reports the true number.
  e.provenance_bytes = q.provenance_bytes + q.n_items * 32;
  e.extra_ops = q.n_items + q.n_large_records;
  return e;
}

StorageEstimate estimate_arch3(const TraceQuantities& q) {
  StorageEstimate e;
  // storage = 2 * S_SQS + S_SimpleDB: each provenance byte is written to
  // SQS, read back, and stored in SimpleDB.
  const StorageEstimate arch2 = estimate_arch2(q);
  e.provenance_bytes = 2 * q.provenance_bytes + arch2.provenance_bytes;
  // ops = 2*(N_S3objects + provsize/8KB) + N_items + N_recs>1KB.
  const std::uint64_t sqs_chunks =
      (q.provenance_bytes + 8 * util::kKiB - 1) / (8 * util::kKiB);
  e.extra_ops = 2 * (q.n_objects + sqs_chunks) + q.n_items + q.n_large_records;
  return e;
}

}  // namespace provcloud::cost
