// The AWS price sheet the paper quotes (section 2, January 2009 snapshot)
// and the conversion from meter snapshots to USD.
//
// "it costs USD 0.15 per GB for the first 50 TB / month of storage used,
// USD 0.10 per GB for all data transferred in, USD 0.17 per GB for the
// first 10 TB / month for data transferred out, USD 0.01 for every 1,000
// PUT, COPY, POST, or LIST requests, and USD 0.01 for 10,000 GET (and
// other) requests." SQS billed per 10K requests; SimpleDB billed by
// machine-hours, which the paper normalizes to operation counts -- we keep
// both: op counts from the meter plus a per-op box-usage approximation.
#pragma once

#include <cstdint>
#include <string>

#include "sim/metering.hpp"

namespace provcloud::cost {

struct PriceSheet {
  // S3.
  double s3_storage_per_gb_month = 0.15;
  double s3_transfer_in_per_gb = 0.10;
  double s3_transfer_out_per_gb = 0.17;
  double s3_per_1000_put_copy_list = 0.01;
  double s3_per_10000_get_other = 0.01;
  // SQS (2009: USD 0.01 per 10,000 requests + bandwidth).
  double sqs_per_10000_requests = 0.01;
  double sqs_transfer_in_per_gb = 0.10;
  double sqs_transfer_out_per_gb = 0.17;
  // SimpleDB (2009: USD 0.14 per machine-hour + bandwidth).
  double sdb_per_machine_hour = 0.14;
  double sdb_transfer_in_per_gb = 0.10;
  double sdb_transfer_out_per_gb = 0.17;
  double sdb_storage_per_gb_month = 0.25;

  // Box-usage approximations (machine-seconds per call), modeled on the
  // published 2009 SimpleDB formulas (raw-request overhead plus per-payload
  // cost). Coarse, but lets the USD table include SimpleDB fairly.
  double sdb_box_seconds_base = 0.0000219907 * 3600.0 / 1000.0;  // per call
  double sdb_box_seconds_per_kb = 0.000000100 * 3600.0;          // per payload KB
};

/// A cost breakdown in USD. Storage is priced per month held.
struct CostEstimate {
  double s3_requests = 0;
  double s3_transfer = 0;
  double s3_storage_month = 0;
  double sdb_box_usage = 0;
  double sdb_transfer = 0;
  double sdb_storage_month = 0;
  double sqs_requests = 0;
  double sqs_transfer = 0;

  double total() const {
    return s3_requests + s3_transfer + s3_storage_month + sdb_box_usage +
           sdb_transfer + sdb_storage_month + sqs_requests + sqs_transfer;
  }
};

/// Price a meter snapshot (typically a diff over one experiment).
CostEstimate estimate_cost(const sim::MeterSnapshot& snapshot,
                           const PriceSheet& prices = PriceSheet{});

/// "$0.0123" formatting helper for tables.
std::string format_usd(double usd);

}  // namespace provcloud::cost
