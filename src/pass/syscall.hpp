// The system-call surface PASS observes.
//
// "PASS observes system calls that applications make and captures
// relationships between objects." Workload generators produce SyscallTrace
// streams; the PassObserver consumes them and emits provenance.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace provcloud::pass {

using Pid = std::uint32_t;

struct SyscallEvent {
  enum class Type {
    kFork,      // pid forks child
    kExec,      // pid becomes program `path` with argv/env
    kRead,      // pid reads file `path`
    kWrite,     // pid appends `data` to file `path`
    kTruncate,  // pid truncates file `path` to empty
    kClose,     // pid closes file `path` (triggers flush if dirty)
    kUnlink,    // pid removes file `path`
    kPipe,      // pid creates pipe `pipe_id`
    kPipeWrite, // pid writes into pipe `pipe_id`
    kPipeRead,  // pid reads from pipe `pipe_id`
    kExit,      // pid exits
  };

  Type type;
  Pid pid = 0;
  Pid child = 0;                        // kFork
  std::string path;                     // file events, kExec program path
  util::Bytes data;                     // kWrite payload
  std::vector<std::string> argv;        // kExec
  std::map<std::string, std::string> env;  // kExec
  std::uint64_t pipe_id = 0;            // pipe events
};

using SyscallTrace = std::vector<SyscallEvent>;

// Convenience constructors used heavily by workload generators and tests.
SyscallEvent ev_fork(Pid parent, Pid child);
SyscallEvent ev_exec(Pid pid, std::string program,
                     std::vector<std::string> argv = {},
                     std::map<std::string, std::string> env = {});
SyscallEvent ev_read(Pid pid, std::string path);
SyscallEvent ev_write(Pid pid, std::string path, util::Bytes data);
SyscallEvent ev_truncate(Pid pid, std::string path);
SyscallEvent ev_close(Pid pid, std::string path);
SyscallEvent ev_unlink(Pid pid, std::string path);
SyscallEvent ev_pipe(Pid pid, std::uint64_t pipe_id);
SyscallEvent ev_pipe_write(Pid pid, std::uint64_t pipe_id);
SyscallEvent ev_pipe_read(Pid pid, std::uint64_t pipe_id);
SyscallEvent ev_exit(Pid pid);

inline SyscallEvent ev_fork(Pid parent, Pid child) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kFork;
  e.pid = parent;
  e.child = child;
  return e;
}

inline SyscallEvent ev_exec(Pid pid, std::string program,
                            std::vector<std::string> argv,
                            std::map<std::string, std::string> env) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kExec;
  e.pid = pid;
  e.path = std::move(program);
  e.argv = std::move(argv);
  e.env = std::move(env);
  return e;
}

inline SyscallEvent ev_read(Pid pid, std::string path) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kRead;
  e.pid = pid;
  e.path = std::move(path);
  return e;
}

inline SyscallEvent ev_write(Pid pid, std::string path, util::Bytes data) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kWrite;
  e.pid = pid;
  e.path = std::move(path);
  e.data = std::move(data);
  return e;
}

inline SyscallEvent ev_truncate(Pid pid, std::string path) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kTruncate;
  e.pid = pid;
  e.path = std::move(path);
  return e;
}

inline SyscallEvent ev_close(Pid pid, std::string path) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kClose;
  e.pid = pid;
  e.path = std::move(path);
  return e;
}

inline SyscallEvent ev_unlink(Pid pid, std::string path) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kUnlink;
  e.pid = pid;
  e.path = std::move(path);
  return e;
}

inline SyscallEvent ev_pipe(Pid pid, std::uint64_t pipe_id) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kPipe;
  e.pid = pid;
  e.pipe_id = pipe_id;
  return e;
}

inline SyscallEvent ev_pipe_write(Pid pid, std::uint64_t pipe_id) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kPipeWrite;
  e.pid = pid;
  e.pipe_id = pipe_id;
  return e;
}

inline SyscallEvent ev_pipe_read(Pid pid, std::uint64_t pipe_id) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kPipeRead;
  e.pid = pid;
  e.pipe_id = pipe_id;
  return e;
}

inline SyscallEvent ev_exit(Pid pid) {
  SyscallEvent e;
  e.type = SyscallEvent::Type::kExit;
  e.pid = pid;
  return e;
}

}  // namespace provcloud::pass
