// PassObserver: the user-space model of PASS provenance collection.
//
// Consumes a stream of system-call events and maintains, per pnode, the
// current version, the pending provenance records of that version (in the
// LocalCache), and the dirty/flushed state. On close of a dirty file it
// emits FlushUnits to the backend, *ancestors first*, which is how every
// architecture in the paper maintains (eventual) causal ordering.
//
// Versioning rules (cycle avoidance, following the PASS design):
//   * write-after-read on a file, a write by a different process than the
//     last writer, or a write after the current version was flushed, bumps
//     the file version (new version gets a PREV xref to the old one);
//   * the first read a process performs after having written anything bumps
//     the process version;
//   * identical records within one (object, version) are recorded once.
//
// Together these guarantee the provenance graph is acyclic, so the
// ancestors-first flush terminates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pass/local_cache.hpp"
#include "pass/pnode.hpp"
#include "pass/record.hpp"
#include "pass/syscall.hpp"
#include "util/bytes.hpp"

namespace provcloud::pass {

/// Aggregate trace statistics: the quantities the paper's section 5
/// extrapolates from ("the provenance takes up 121.8MB, 9.3% overhead...").
struct ObserverStats {
  std::uint64_t events = 0;
  std::uint64_t records_emitted = 0;      // provenance records flushed
  std::uint64_t flush_units = 0;          // object versions flushed
  std::uint64_t file_units = 0;           // of which files (data-bearing)
  std::uint64_t data_bytes_flushed = 0;   // raw data shipped at flushes
  std::uint64_t provenance_bytes = 0;     // serialized record payloads
  std::uint64_t large_records = 0;        // records with payload > 1 KB
};

class PassObserver {
 public:
  /// `sink` receives FlushUnits in causal (ancestors-first) order.
  /// `transient_namespace` prefixes process/pipe pnode names (e.g.
  /// "clientA/"): required when several clients share one cloud, since
  /// their local pids would otherwise collide in the provenance store.
  explicit PassObserver(FlushSink sink, std::string transient_namespace = "");

  void apply(const SyscallEvent& event);
  void apply_trace(const SyscallTrace& trace);

  /// Flush every dirty file (end of the run / unmount).
  void finish();

  const ObserverStats& stats() const { return stats_; }

  /// Ground truth: every FlushUnit ever emitted, keyed by (object, version).
  /// Property checkers compare backend contents against this.
  const std::map<std::pair<std::string, std::uint32_t>, FlushUnit>&
  ground_truth() const {
    return ground_truth_;
  }

  /// Objects in the order their first version was flushed (stable listing
  /// for benches).
  const std::vector<std::string>& flush_order() const { return flush_order_; }

 private:
  struct Node {
    PnodeKind kind = PnodeKind::kFile;
    std::uint32_t version = 1;
    bool read_since_write = false;  // current version read by someone
    bool has_writer = false;
    Pid last_writer = 0;
    bool dirty = false;             // pending records/data for current version
    bool flushed_current = false;   // current version already persisted
  };
  struct Process {
    std::string object;  // current process pnode name
    bool wrote_since_bump = false;
  };

  Node& ensure_file(const std::string& path);
  Node& ensure_pipe(std::uint64_t pipe_id, Pid creator);
  Process& ensure_process(Pid pid);
  Node& node(const std::string& object);

  void on_fork(const SyscallEvent& e);
  void on_exec(const SyscallEvent& e);
  void on_read(Pid pid, const std::string& object);
  void on_write(Pid pid, const std::string& object, util::BytesView data,
                bool truncate);
  void on_close(Pid pid, const std::string& object);
  void on_unlink(const SyscallEvent& e);

  /// Bump the process version if it wrote since the last bump (called
  /// before recording a new input).
  void maybe_bump_process(Process& proc);

  /// Bump the file/pipe version if required before a write by `pid`.
  void maybe_bump_node(const std::string& object, Node& n, Pid pid);

  /// Flush (object, current version) after recursively flushing every
  /// unflushed ancestor referenced from its pending records.
  void flush_with_ancestors(const std::string& object);
  void flush_one(const std::string& object, std::uint32_t version);
  bool is_flushed(const std::string& object, std::uint32_t version) const;

  std::string proc_name(Pid pid, std::uint32_t exec_index) const;
  std::string pipe_name(std::uint64_t pipe_id) const;

  FlushSink sink_;
  std::string transient_namespace_;
  LocalCache cache_;
  std::map<std::string, Node> nodes_;       // by pnode name
  std::map<Pid, Process> processes_;
  std::map<Pid, std::uint32_t> exec_count_;
  // Content snapshots of file versions that were superseded while unflushed.
  std::map<std::pair<std::string, std::uint32_t>, util::SharedBytes>
      version_snapshots_;
  std::set<std::pair<std::string, std::uint32_t>> flushed_;
  std::set<std::pair<std::string, std::uint32_t>> flushing_;  // cycle guard
  std::map<std::pair<std::string, std::uint32_t>, FlushUnit> ground_truth_;
  std::vector<std::string> flush_order_;
  std::set<std::string> objects_seen_in_flush_order_;
  ObserverStats stats_;
};

}  // namespace provcloud::pass
