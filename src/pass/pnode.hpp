// Provenance nodes.
//
// PASS names every provenanced entity -- persistent files and transient
// processes and pipes -- as a *pnode* with a monotonically increasing
// version. A specific (pnode, version) pair is the unit that provenance
// records reference ("bar:2" in the paper's example).
#pragma once

#include <cstdint>
#include <string>

namespace provcloud::pass {

/// What kind of entity a pnode names.
enum class PnodeKind {
  kFile,     // persistent: has data, maps to an S3 object
  kProcess,  // transient: provenance only
  kPipe,     // transient: provenance only
};

const char* to_string(PnodeKind kind);

/// A reference to a specific version of an object: the paper's "bar:2".
struct ObjectVersion {
  std::string object;
  std::uint32_t version = 0;

  bool operator==(const ObjectVersion&) const = default;
  auto operator<=>(const ObjectVersion&) const = default;

  /// Canonical string form "object:version".
  std::string to_string() const {
    return object + ":" + std::to_string(version);
  }
};

inline const char* to_string(PnodeKind kind) {
  switch (kind) {
    case PnodeKind::kFile: return "file";
    case PnodeKind::kProcess: return "process";
    case PnodeKind::kPipe: return "pipe";
  }
  return "?";
}

}  // namespace provcloud::pass
