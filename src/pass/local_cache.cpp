#include "pass/local_cache.hpp"

#include <algorithm>

namespace provcloud::pass {

namespace {
const std::vector<ProvenanceRecord> kNoRecords;
}

void LocalCache::append_data(const std::string& object, util::BytesView data) {
  data_[object].append(data);
}

void LocalCache::truncate_data(const std::string& object) {
  data_[object].clear();
}

util::BytesView LocalCache::data(const std::string& object) const {
  auto it = data_.find(object);
  if (it == data_.end()) return {};
  return it->second;
}

bool LocalCache::add_record(const std::string& object, std::uint32_t version,
                            const ProvenanceRecord& record) {
  auto& records = records_[{object, version}];
  if (std::find(records.begin(), records.end(), record) != records.end())
    return false;
  records.push_back(record);
  return true;
}

const std::vector<ProvenanceRecord>& LocalCache::records(
    const std::string& object, std::uint32_t version) const {
  auto it = records_.find({object, version});
  return it == records_.end() ? kNoRecords : it->second;
}

void LocalCache::clear_records(const std::string& object,
                               std::uint32_t version) {
  records_.erase({object, version});
}

void LocalCache::remove(const std::string& object) {
  data_.erase(object);
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->first.first == object)
      it = records_.erase(it);
    else
      ++it;
  }
}

std::uint64_t LocalCache::cached_data_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [object, bytes] : data_) total += bytes.size();
  return total;
}

}  // namespace provcloud::pass
