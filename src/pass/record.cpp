#include "pass/record.hpp"

namespace provcloud::pass {

std::string ProvenanceRecord::value_string() const {
  if (is_xref()) return xref().to_string();
  return text();
}

std::size_t ProvenanceRecord::payload_size() const {
  return attribute.size() + value_string().size();
}

ProvenanceRecord make_text_record(std::string attribute, std::string value) {
  return ProvenanceRecord{std::move(attribute), std::move(value)};
}

ProvenanceRecord make_xref_record(std::string attribute, ObjectVersion ref) {
  return ProvenanceRecord{std::move(attribute), std::move(ref)};
}

std::uint64_t records_payload_size(const std::vector<ProvenanceRecord>& records) {
  std::uint64_t total = 0;
  for (const auto& r : records) total += r.payload_size();
  return total;
}

}  // namespace provcloud::pass
