#include "pass/observer.hpp"

#include "util/require.hpp"
#include "util/string_utils.hpp"

namespace provcloud::pass {

PassObserver::PassObserver(FlushSink sink, std::string transient_namespace)
    : sink_(std::move(sink)),
      transient_namespace_(std::move(transient_namespace)) {
  PROVCLOUD_REQUIRE(sink_ != nullptr);
}

std::string PassObserver::proc_name(Pid pid, std::uint32_t exec_index) const {
  return transient_namespace_ + "proc/" + std::to_string(pid) + "/" +
         std::to_string(exec_index);
}

std::string PassObserver::pipe_name(std::uint64_t pipe_id) const {
  return transient_namespace_ + "pipe/" + std::to_string(pipe_id);
}

PassObserver::Node& PassObserver::node(const std::string& object) {
  auto it = nodes_.find(object);
  PROVCLOUD_REQUIRE_MSG(it != nodes_.end(), "unknown pnode " + object);
  return it->second;
}

PassObserver::Node& PassObserver::ensure_file(const std::string& path) {
  auto it = nodes_.find(path);
  if (it != nodes_.end()) return it->second;
  // First sighting: a pre-existing input (e.g. /usr/bin/gcc) or a file about
  // to be created. Either way version 1 begins with identity records.
  Node n;
  n.kind = PnodeKind::kFile;
  n.dirty = true;
  it = nodes_.emplace(path, n).first;
  cache_.add_record(path, 1, make_text_record(attr::kType, "file"));
  cache_.add_record(path, 1, make_text_record(attr::kName, path));
  return it->second;
}

PassObserver::Node& PassObserver::ensure_pipe(std::uint64_t pipe_id,
                                              Pid creator) {
  const std::string object = pipe_name(pipe_id);
  auto it = nodes_.find(object);
  if (it != nodes_.end()) return it->second;
  Node n;
  n.kind = PnodeKind::kPipe;
  n.dirty = true;
  it = nodes_.emplace(object, n).first;
  cache_.add_record(object, 1, make_text_record(attr::kType, "pipe"));
  cache_.add_record(object, 1,
                    make_text_record(attr::kName, object + "@" +
                                                      std::to_string(creator)));
  return it->second;
}

PassObserver::Process& PassObserver::ensure_process(Pid pid) {
  auto it = processes_.find(pid);
  if (it != processes_.end()) return it->second;
  // Unknown pid acting without exec: synthesize a process pnode.
  const std::string object = proc_name(pid, 0);
  Process p;
  p.object = object;
  it = processes_.emplace(pid, p).first;
  Node n;
  n.kind = PnodeKind::kProcess;
  n.dirty = true;
  nodes_.emplace(object, n);
  cache_.add_record(object, 1, make_text_record(attr::kType, "process"));
  cache_.add_record(object, 1,
                    make_text_record(attr::kName, "pid" + std::to_string(pid)));
  return it->second;
}

void PassObserver::maybe_bump_process(Process& proc) {
  if (!proc.wrote_since_bump) return;
  Node& n = node(proc.object);
  const std::uint32_t old_version = n.version;
  ++n.version;
  n.dirty = true;
  n.flushed_current = false;
  proc.wrote_since_bump = false;
  cache_.add_record(proc.object, n.version,
                    make_xref_record(attr::kPrev,
                                     ObjectVersion{proc.object, old_version}));
}

void PassObserver::maybe_bump_node(const std::string& object, Node& n,
                                   Pid pid) {
  const bool other_writer = n.has_writer && n.last_writer != pid;
  if (!(n.read_since_write || other_writer || n.flushed_current)) return;
  // Snapshot the superseded version's content if it was never flushed, so a
  // later ancestors-first flush can still persist exactly what that version
  // contained.
  if (n.kind == PnodeKind::kFile && !is_flushed(object, n.version))
    version_snapshots_[{object, n.version}] =
        util::make_shared_bytes(cache_.data(object));
  const std::uint32_t old_version = n.version;
  ++n.version;
  n.read_since_write = false;
  n.dirty = true;
  n.flushed_current = false;
  cache_.add_record(object, n.version,
                    make_xref_record(attr::kPrev,
                                     ObjectVersion{object, old_version}));
}

void PassObserver::on_fork(const SyscallEvent& e) {
  Process& parent = ensure_process(e.pid);
  const std::string parent_object = parent.object;
  const std::uint32_t parent_version = node(parent_object).version;

  const std::string child_object = proc_name(e.child, 0);
  Process child;
  child.object = child_object;
  processes_[e.child] = child;
  Node n;
  n.kind = PnodeKind::kProcess;
  n.dirty = true;
  nodes_[child_object] = n;
  cache_.add_record(child_object, 1, make_text_record(attr::kType, "process"));
  cache_.add_record(child_object, 1,
                    make_text_record(attr::kName,
                                     "pid" + std::to_string(e.child)));
  cache_.add_record(
      child_object, 1,
      make_xref_record(attr::kForkParent,
                       ObjectVersion{parent_object, parent_version}));
}

void PassObserver::on_exec(const SyscallEvent& e) {
  // The executable file is an ancestor of the new process image.
  Node& exe = ensure_file(e.path);
  const std::uint32_t exe_version = exe.version;
  exe.read_since_write = true;

  Process& proc = ensure_process(e.pid);
  const std::string prev_object = proc.object;
  const std::uint32_t prev_version = node(prev_object).version;

  const std::uint32_t n_exec = ++exec_count_[e.pid];
  const std::string object = proc_name(e.pid, n_exec);
  proc.object = object;
  proc.wrote_since_bump = false;

  Node n;
  n.kind = PnodeKind::kProcess;
  n.dirty = true;
  nodes_[object] = n;

  cache_.add_record(object, 1, make_text_record(attr::kType, "process"));
  cache_.add_record(object, 1, make_text_record(attr::kName, e.path));
  cache_.add_record(object, 1,
                    make_xref_record(attr::kInput,
                                     ObjectVersion{e.path, exe_version}));
  cache_.add_record(object, 1,
                    make_xref_record(attr::kPrev,
                                     ObjectVersion{prev_object, prev_version}));
  if (!e.argv.empty())
    cache_.add_record(object, 1,
                      make_text_record(attr::kArgv, util::join(e.argv, " ")));
  if (!e.env.empty()) {
    // The whole environment is one record; real PASS process records
    // routinely exceed the 1KB SimpleDB value limit this way, which is what
    // drives the paper's large-record spill path.
    std::string env;
    for (const auto& [k, v] : e.env) {
      if (!env.empty()) env.push_back(';');
      env += k + "=" + v;
    }
    cache_.add_record(object, 1, make_text_record(attr::kEnv, std::move(env)));
  }
}

void PassObserver::on_read(Pid pid, const std::string& object) {
  Node& n = node(object);
  Process& proc = ensure_process(pid);
  maybe_bump_process(proc);
  Node& pn = node(proc.object);
  if (cache_.add_record(proc.object, pn.version,
                        make_xref_record(attr::kInput,
                                         ObjectVersion{object, n.version}))) {
    pn.dirty = true;
    pn.flushed_current = false;
  }
  n.read_since_write = true;
}

void PassObserver::on_write(Pid pid, const std::string& object,
                            util::BytesView data, bool truncate) {
  Node& n = node(object);
  Process& proc = ensure_process(pid);
  maybe_bump_node(object, n, pid);
  if (truncate)
    cache_.truncate_data(object);
  else
    cache_.append_data(object, data);
  n.has_writer = true;
  n.last_writer = pid;
  n.dirty = true;
  const Node& pn = node(proc.object);
  cache_.add_record(object, n.version,
                    make_xref_record(attr::kInput,
                                     ObjectVersion{proc.object, pn.version}));
  proc.wrote_since_bump = true;
}

void PassObserver::on_close(Pid pid, const std::string& object) {
  (void)pid;
  auto it = nodes_.find(object);
  if (it == nodes_.end()) return;
  if (!it->second.dirty || it->second.flushed_current) return;
  flush_with_ancestors(object);
}

void PassObserver::on_unlink(const SyscallEvent& e) {
  nodes_.erase(e.path);
  cache_.remove(e.path);
}

bool PassObserver::is_flushed(const std::string& object,
                              std::uint32_t version) const {
  return flushed_.count({object, version}) > 0;
}

void PassObserver::flush_with_ancestors(const std::string& object) {
  Node& n = node(object);
  flush_one(object, n.version);
}

void PassObserver::flush_one(const std::string& object, std::uint32_t version) {
  if (is_flushed(object, version)) return;
  const auto key = std::make_pair(object, version);
  if (flushing_.count(key) > 0) return;  // defensive: versioning makes a DAG
  flushing_.insert(key);

  // Ancestors first (causal ordering).
  for (const ProvenanceRecord& r : cache_.records(object, version)) {
    if (!r.is_xref()) continue;
    const ObjectVersion& ref = r.xref();
    if (nodes_.count(ref.object) == 0) continue;  // unlinked ancestor
    flush_one(ref.object, ref.version);
  }

  auto node_it = nodes_.find(object);
  PROVCLOUD_REQUIRE(node_it != nodes_.end());
  Node& n = node_it->second;

  FlushUnit unit;
  unit.object = object;
  unit.kind = n.kind;
  unit.version = version;
  unit.records = cache_.records(object, version);
  if (n.kind == PnodeKind::kFile) {
    auto snap = version_snapshots_.find(key);
    if (snap != version_snapshots_.end()) {
      unit.data = snap->second;
      version_snapshots_.erase(snap);
    } else {
      unit.data = util::make_shared_bytes(cache_.data(object));
    }
  }

  // Account statistics before handing off.
  ++stats_.flush_units;
  if (n.kind == PnodeKind::kFile) {
    ++stats_.file_units;
    stats_.data_bytes_flushed += unit.data->size();
  }
  stats_.records_emitted += unit.records.size();
  for (const ProvenanceRecord& r : unit.records) {
    const std::size_t payload = r.payload_size();
    stats_.provenance_bytes += payload;
    if (payload > util::kKiB) ++stats_.large_records;
  }

  ground_truth_[key] = unit;
  if (objects_seen_in_flush_order_.insert(object).second)
    flush_order_.push_back(object);

  sink_(unit);

  flushed_.insert(key);
  flushing_.erase(key);
  if (n.version == version) {
    n.dirty = false;
    n.flushed_current = true;
  }
}

void PassObserver::apply(const SyscallEvent& e) {
  ++stats_.events;
  using Type = SyscallEvent::Type;
  switch (e.type) {
    case Type::kFork:
      on_fork(e);
      break;
    case Type::kExec:
      on_exec(e);
      break;
    case Type::kRead:
      ensure_file(e.path);
      on_read(e.pid, e.path);
      break;
    case Type::kWrite:
      ensure_file(e.path);
      on_write(e.pid, e.path, e.data, /*truncate=*/false);
      break;
    case Type::kTruncate:
      ensure_file(e.path);
      on_write(e.pid, e.path, {}, /*truncate=*/true);
      break;
    case Type::kClose:
      on_close(e.pid, e.path);
      break;
    case Type::kUnlink:
      on_unlink(e);
      break;
    case Type::kPipe:
      ensure_pipe(e.pipe_id, e.pid);
      break;
    case Type::kPipeWrite:
      ensure_pipe(e.pipe_id, e.pid);
      on_write(e.pid, pipe_name(e.pipe_id), {}, /*truncate=*/false);
      break;
    case Type::kPipeRead:
      ensure_pipe(e.pipe_id, e.pid);
      on_read(e.pid, pipe_name(e.pipe_id));
      break;
    case Type::kExit:
      // Transient state flushes on demand when a persistent descendant is
      // closed; nothing to do at exit.
      break;
  }
}

void PassObserver::apply_trace(const SyscallTrace& trace) {
  for (const SyscallEvent& e : trace) apply(e);
}

void PassObserver::finish() {
  // Close every dirty file (equivalent to unmounting the PASS volume).
  std::vector<std::string> dirty_files;
  for (const auto& [object, n] : nodes_)
    if (n.kind == PnodeKind::kFile && n.dirty && !n.flushed_current)
      dirty_files.push_back(object);
  for (const std::string& object : dirty_files) flush_with_ancestors(object);
}

}  // namespace provcloud::pass
