// The client-side cache the paper's architectures share.
//
// "We mirror the file system in a local cache directory, reducing traffic to
// S3. We also cache provenance locally in a file hidden from the user."
//
// LocalCache holds, per object, the pending (not yet flushed) data contents
// and provenance records of the *current version*. On close, the observer
// reads the caches and hands a FlushUnit to the backend -- step 1 of every
// protocol in section 4 ("Read the data cache file and provenance cache file
// of the object").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pass/pnode.hpp"
#include "pass/record.hpp"
#include "util/bytes.hpp"

namespace provcloud::pass {

/// What a backend receives for one object version at flush time.
struct FlushUnit {
  std::string object;
  PnodeKind kind = PnodeKind::kFile;
  std::uint32_t version = 0;
  /// File contents; null for transient objects (processes, pipes).
  util::SharedBytes data;
  std::vector<ProvenanceRecord> records;
};

/// Backend entry point. Units arrive ancestors-first (causal order).
using FlushSink = std::function<void(const FlushUnit&)>;

class LocalCache {
 public:
  /// Append to the data cache file of `object`.
  void append_data(const std::string& object, util::BytesView data);

  /// Truncate the data cache file.
  void truncate_data(const std::string& object);

  /// Current cached contents ("" when never written).
  util::BytesView data(const std::string& object) const;

  /// Append a record to the provenance cache of (object, version),
  /// de-duplicated: identical records within one version are recorded once.
  /// Returns true when the record was new.
  bool add_record(const std::string& object, std::uint32_t version,
                  const ProvenanceRecord& record);

  /// Pending records of (object, version).
  const std::vector<ProvenanceRecord>& records(const std::string& object,
                                               std::uint32_t version) const;

  /// Forget the provenance cache of (object, version) -- called once the
  /// version is flushed.
  void clear_records(const std::string& object, std::uint32_t version);

  /// Drop everything about an object (unlink).
  void remove(const std::string& object);

  /// Total bytes of cached data (diagnostics).
  std::uint64_t cached_data_bytes() const;

 private:
  std::map<std::string, util::Bytes> data_;
  std::map<std::pair<std::string, std::uint32_t>,
           std::vector<ProvenanceRecord>>
      records_;
};

}  // namespace provcloud::pass
