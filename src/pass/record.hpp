// Provenance records.
//
// A provenance record is an (attribute, value) pair attached to one version
// of one object -- e.g. version 2 of "foo" having records (INPUT, bar:2) and
// (TYPE, file), exactly the paper's section 4.2 example. Values are either
// plain strings (TYPE, NAME, ARGV, ENV...) or cross-references to another
// (object, version).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "pass/pnode.hpp"

namespace provcloud::pass {

/// Well-known attribute names. Plain strings so user code can add its own.
namespace attr {
inline constexpr const char* kType = "TYPE";         // "file" | "process" | "pipe"
inline constexpr const char* kName = "NAME";         // path / program name
inline constexpr const char* kInput = "INPUT";       // xref: data-flow ancestor
inline constexpr const char* kPrev = "PREV";         // xref: previous version
inline constexpr const char* kForkParent = "FORKPARENT";  // xref: parent process
inline constexpr const char* kArgv = "ARGV";
inline constexpr const char* kEnv = "ENV";
inline constexpr const char* kCwd = "CWD";
inline constexpr const char* kMd5 = "MD5";           // consistency token (backends add it)
}  // namespace attr

struct ProvenanceRecord {
  std::string attribute;
  std::variant<std::string, ObjectVersion> value;

  bool is_xref() const { return std::holds_alternative<ObjectVersion>(value); }
  const ObjectVersion& xref() const { return std::get<ObjectVersion>(value); }
  const std::string& text() const { return std::get<std::string>(value); }

  /// Serialized value: xrefs render as "object:version".
  std::string value_string() const;

  /// Total serialized payload size (attribute + value), the quantity the
  /// paper's storage analysis sums.
  std::size_t payload_size() const;

  bool operator==(const ProvenanceRecord&) const = default;
};

ProvenanceRecord make_text_record(std::string attribute, std::string value);
ProvenanceRecord make_xref_record(std::string attribute, ObjectVersion ref);

/// Sum of payload sizes over a record set.
std::uint64_t records_payload_size(const std::vector<ProvenanceRecord>& records);

}  // namespace provcloud::pass
